//! Sweep-as-a-service: a resident [`SolverSession`] serving queued
//! solves from many concurrent campaigns.
//!
//! [`solve_parallel_cached`](crate::solver::solve_parallel_cached) is
//! one-shot: it launches a resident universe, runs one solve's source
//! iterations as epochs, and tears the universe down. Multi-solve
//! workloads — time stepping, eigenvalue iteration, material sweeps,
//! uncertainty campaigns — pay that launch/teardown once per solve and
//! re-enter the runtime from scratch each time, even though every
//! solve of a given problem shape could run on the *same* resident
//! programs with the *same* compiled replay plan.
//!
//! A [`SolverSession`] keeps exactly one
//! [`EpochWorld`](crate::solver) alive on a dedicated driver thread:
//! one resident [`jsweep_core::Universe`], one shared [`PlanCache`].
//! Campaigns (independent clients, typically one per thread) obtain a
//! [`CampaignHandle`] and submit [`SolveRequest`]s asynchronously; each
//! request is reduced to a sequence of sweep epochs and interleaved
//! with other campaigns' epochs by a pluggable [`AdmissionPolicy`].
//! Every completed request resolves its [`SolveTicket`] with a
//! [`SolveOutcome`] whose flux is **bit-identical** to a solo
//! `solve_parallel_cached` call of the same request: an epoch of a
//! session *is* the loop body of the solo solver (see
//! `advance_one_epoch`), and fine-path and replay iterations produce
//! the same flux bit-for-bit (§V-E), so interleaving changes wall
//! clock, never physics.
//!
//! # Lifecycle
//!
//! ```text
//!      launch()                 submit()          epochs (policy-picked)
//!   ┌────────────┐  campaign() ┌─────────┐ admit ┌─────────┐ done ┌──────────┐
//!   │ SolverSession│──────────▶│ queued  │──────▶│ running │─────▶│ resolved │
//!   └────────────┘             └─────────┘       └─────────┘      └──────────┘
//!        │  refine(mesh', problem'): drain admitted work, retire the
//!        │  universe, swap the world — later admissions record fresh
//!        │  plans under the new generation stamp (stale plans are
//!        │  structurally unreachable: the generation is in the PlanKey).
//!        ▼
//!     shutdown(): drain admitted work, resolve everything still queued
//!     with SessionError::Closed, retire the universe, join the driver.
//! ```
//!
//! Pause/resume gate *epoch execution* only: a paused session still
//! admits submissions (the deterministic-interleaving tests rely on
//! this to stage a known backlog before any epoch runs).
//!
//! See `docs/session.md` for the full state diagram, the admission
//! policies, and the stats glossary.

use crate::replay::{EvictionPolicy, PlanCache};
use crate::solver::{advance_one_epoch, EpochWorld, SnConfig, SnSolution, SolveProgress};
use crate::xs::MaterialSet;
use jsweep_core::fault::{EpochFault, FaultKind};
#[cfg(feature = "telemetry")]
use jsweep_core::telemetry::obs;
use jsweep_core::telemetry::TelemetryHandle;
use jsweep_graph::SweepProblem;
use jsweep_mesh::SweepTopology;
use jsweep_quadrature::QuadratureSet;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One queued solve: the physics that varies per request. The problem
/// shape (mesh, decomposition, quadrature, solver knobs) is session
/// state — requests that need a different shape need a different
/// session (or a [`SolverSession::refine`]).
#[derive(Clone)]
pub struct SolveRequest {
    /// Cross sections and sources for this solve. Must cover the
    /// session's mesh; with a live resident universe the group count
    /// must match the resident programs (their buffer shapes are fixed
    /// at launch) — violations resolve the ticket with
    /// [`SessionError::Rejected`] instead of panicking the driver.
    pub materials: Arc<MaterialSet>,
    /// Override of [`SnConfig::max_iterations`] for this request.
    pub max_iterations: Option<usize>,
    /// Override of [`SnConfig::tolerance`] for this request.
    pub tolerance: Option<f64>,
    /// Override of the session-wide [`SessionOptions::retry`] policy
    /// for this request.
    pub retry: Option<RetryPolicy>,
}

impl SolveRequest {
    /// A request with the session's default iteration budget,
    /// tolerance and retry policy.
    pub fn new(materials: Arc<MaterialSet>) -> Self {
        SolveRequest {
            materials,
            max_iterations: None,
            tolerance: None,
            retry: None,
        }
    }
}

/// How a request responds to a faulted epoch (a contained program
/// panic, a watchdog-detected stall, or an injected failure — see
/// [`EpochFault`]).
///
/// A retried epoch reruns the *same* source iteration on a relaunched
/// universe: a faulted epoch never touches the solve's flux iterate,
/// so a retry that succeeds continues the bit-identical iteration
/// sequence as if the fault never happened. The default policy is no
/// retries: every fault resolves the ticket
/// [`SessionError::Failed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Faulted epochs to retry before the request fails. Each retry
    /// costs a universe relaunch.
    pub max_retries: u32,
    /// Driver-side delay before each retry (a persistent hardware or
    /// state problem often needs time to clear; zero retries
    /// immediately).
    pub backoff: Duration,
}

/// Why (and where) a request failed: the terminal fault of a solve
/// whose retry budget is exhausted. Carried by
/// [`SessionError::Failed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Campaign of the failed request.
    pub campaign: u64,
    /// Sequence number of the failed request within its campaign.
    pub seq: u64,
    /// The source iteration the faulted epoch was attempting
    /// (1-based); iterations before it completed normally.
    pub iteration: usize,
    /// Retries already spent on this request before the terminal
    /// fault.
    pub retries: u32,
    /// The fault itself, as reported by the runtime.
    pub fault: EpochFault,
}

/// Why a [`SolveTicket`] resolved without a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The session shut down before the request was served.
    Closed,
    /// The request was incompatible with the session's world (wrong
    /// mesh coverage, or a group count the resident programs cannot
    /// adopt).
    Rejected(String),
    /// The request's epochs faulted past its retry budget. Only the
    /// offending request fails: the universe is relaunched and the
    /// rest of the queue keeps being served.
    Failed(FaultReport),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Closed => write!(f, "session closed before the request was served"),
            SessionError::Rejected(why) => write!(f, "request rejected: {why}"),
            SessionError::Failed(r) => write!(
                f,
                "request failed at iteration {} after {} retries: {}",
                r.iteration, r.retries, r.fault
            ),
        }
    }
}

impl std::error::Error for SessionError {}

/// The resolved result of one [`SolveRequest`].
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Campaign the request belonged to.
    pub campaign: u64,
    /// Submission sequence number within the campaign (0-based).
    pub seq: u64,
    /// The solve result — bit-identical to a solo
    /// [`crate::solver::solve_parallel_cached`] of the same request,
    /// including per-epoch [`jsweep_core::RunStats`] in
    /// [`SnSolution::stats`].
    pub solution: SnSolution,
    /// Mesh generation the solve ran against.
    pub mesh_generation: u64,
    /// Seconds between submission and the request's first epoch (its
    /// time at the back of the queue).
    pub queue_wait_seconds: f64,
    /// Telemetry span id stamped on every epoch this request ran (the
    /// `b` payload of its `Epoch` events in an exported Chrome trace —
    /// see `docs/observability.md`). Assigned at admission as
    /// `admission_index + 1`, so it is nonzero and deterministic; `0`
    /// for a degenerate request that ran no epochs.
    pub span_id: u64,
}

/// A solve the admission policy can schedule an epoch for: the head
/// request of one campaign's queue. Requests within a campaign are
/// strictly ordered; campaigns are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochCandidate {
    /// Campaign id.
    pub campaign: u64,
    /// Request sequence number within the campaign.
    pub seq: u64,
    /// Global admission order of the request (monotone across the
    /// session) — the FIFO sort key.
    pub admission_index: u64,
    /// Epochs already run for this request.
    pub epochs_run: usize,
}

/// Decides which admitted solve runs the next epoch.
///
/// Called by the driver with one candidate per campaign that has work
/// (never empty); must return an index into `candidates`. Policies are
/// deterministic functions of the candidate list and their own state —
/// the deterministic-interleaving tests replay a seeded submission
/// order against a policy and assert the exact epoch schedule.
pub trait AdmissionPolicy: Send {
    /// Pick the candidate whose solve runs the next epoch.
    fn next_epoch(&mut self, candidates: &[EpochCandidate]) -> usize;
}

/// Strict first-come-first-served: the earliest-admitted request runs
/// to completion before any later one gets an epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn next_epoch(&mut self, candidates: &[EpochCandidate]) -> usize {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.admission_index)
            .map(|(i, _)| i)
            .expect("candidates is never empty")
    }
}

/// Per-campaign round-robin: one epoch to the smallest campaign id
/// strictly greater than the last-served id, wrapping. Keeps every
/// campaign's latency bounded regardless of how many requests the
/// others have queued.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    last: Option<u64>,
}

impl AdmissionPolicy for RoundRobin {
    fn next_epoch(&mut self, candidates: &[EpochCandidate]) -> usize {
        let after = |floor: u64| {
            candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| c.campaign > floor)
                .min_by_key(|(_, c)| c.campaign)
        };
        let first = || {
            candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.campaign)
        };
        let (i, c) = match self.last {
            Some(l) => after(l).or_else(first),
            None => first(),
        }
        .expect("candidates is never empty");
        self.last = Some(c.campaign);
        i
    }
}

/// Per-campaign accounting, aggregated over the campaign's lifetime.
/// Per-epoch [`jsweep_core::RunStats`] deltas ride in each
/// [`SolveOutcome::solution`]; these are the running totals a monitor
/// would poll.
#[derive(Debug, Clone, Default)]
pub struct CampaignStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed with a solution.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Requests that resolved [`SessionError::Failed`] (fault past the
    /// retry budget).
    pub failed: u64,
    /// Faulted epochs attributed to this campaign's requests
    /// (including ones a retry later recovered).
    pub faults: u64,
    /// Epoch retries spent by this campaign's requests.
    pub retries: u64,
    /// The campaign hit [`SessionOptions::quarantine_after`]
    /// consecutive faults: its queue was flushed and every later
    /// submission resolves [`SessionError::Rejected`].
    pub quarantined: bool,
    /// Epochs run on behalf of this campaign.
    pub epochs_run: u64,
    /// Admissions that found their replay plan in the session cache.
    pub plan_cache_hits: u64,
    /// Admissions that missed the cache (their first iteration
    /// records).
    pub plan_cache_misses: u64,
    /// Total seconds the campaign's requests spent queued before their
    /// first epoch.
    pub queue_wait_seconds: f64,
    /// Total aggregated epoch wall seconds.
    pub epoch_wall_seconds: f64,
    /// Total units of sweep work executed.
    pub work_done: u64,
    /// Total patch-program compute calls.
    pub compute_calls: u64,
    /// Total end-of-epoch worker drain seconds (see
    /// [`jsweep_core::RunStats::worker_drain_seconds`]).
    pub worker_drain_seconds: f64,
}

/// One line of the session's epoch log: which solve ran, in which
/// scheduling mode, against which plan and mesh generation. The
/// deterministic-interleaving tests compare this log against a
/// reference schedule; the soak test asserts no replayed epoch ever
/// used a plan from a superseded generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Campaign served.
    pub campaign: u64,
    /// Request sequence number within the campaign.
    pub seq: u64,
    /// The request's iteration count after this epoch (1-based). A
    /// faulted epoch records the iteration it was *attempting* — the
    /// solve's own count did not advance.
    pub iteration: usize,
    /// Whether the epoch replayed a coarse plan (vs the fine path).
    pub replayed: bool,
    /// The epoch faulted: it contributed no flux and no stats, and
    /// the universe was relaunched afterwards.
    pub faulted: bool,
    /// Generation stamp of the replayed plan (`None` on fine epochs).
    pub plan_generation: Option<u64>,
    /// Mesh generation of the world the epoch ran against.
    pub mesh_generation: u64,
}

/// Snapshot of a session's accounting.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Mesh generation currently served.
    pub mesh_generation: u64,
    /// Resident universes launched over the session's lifetime (one
    /// per world that ran at least one epoch).
    pub universes_launched: u64,
    /// Resident universes retired (shutdown or refinement). Equal to
    /// `universes_launched` after shutdown — the no-leak invariant the
    /// soak test pins.
    pub universes_retired: u64,
    /// Total epochs run.
    pub epochs_run: u64,
    /// Faulted epochs across the session (each also appears in its
    /// campaign's [`CampaignStats::faults`]).
    pub faults: u64,
    /// Epoch retries spent across the session.
    pub retries: u64,
    /// Universe relaunches forced by faults. Every relaunch also
    /// counts one `universes_retired` and (lazily, on the next epoch)
    /// one `universes_launched`, so the no-leak invariant
    /// `launched == retired after shutdown` is unchanged.
    pub relaunches: u64,
    /// Per-campaign accounting.
    pub campaigns: BTreeMap<u64, CampaignStats>,
    /// Ordered log of every epoch run.
    pub epoch_log: Vec<EpochRecord>,
}

/// Configuration of a [`SolverSession`].
pub struct SessionOptions {
    /// Solver knobs shared by every request ([`SolveRequest`] may
    /// override `max_iterations` / `tolerance` per solve).
    pub solver: SnConfig,
    /// Epoch scheduling policy across campaigns.
    pub admission: Box<dyn AdmissionPolicy>,
    /// Eviction policy of the session's shared [`PlanCache`].
    pub eviction: EvictionPolicy,
    /// Session-wide default [`RetryPolicy`]; a [`SolveRequest::retry`]
    /// overrides it per request. Default: no retries.
    pub retry: RetryPolicy,
    /// Quarantine a campaign after this many *consecutive* terminal
    /// faults (a completed request resets the count): its queued
    /// requests and all later submissions resolve
    /// [`SessionError::Rejected`]. `0` (the default) disables
    /// quarantine.
    pub quarantine_after: u32,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            solver: SnConfig::default(),
            admission: Box::new(Fifo),
            eviction: EvictionPolicy::Manual,
            retry: RetryPolicy::default(),
            quarantine_after: 0,
        }
    }
}

/// One-shot result slot a submitter blocks on.
#[derive(Default)]
struct TicketCell {
    slot: Mutex<Option<Result<SolveOutcome, SessionError>>>,
    cv: Condvar,
}

impl TicketCell {
    fn fulfill(&self, result: Result<SolveOutcome, SessionError>) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "ticket fulfilled twice");
        *slot = Some(result);
        self.cv.notify_all();
    }
}

/// Future of one submitted request.
pub struct SolveTicket {
    cell: Arc<TicketCell>,
}

impl SolveTicket {
    /// Block until the request resolves.
    pub fn wait(self) -> Result<SolveOutcome, SessionError> {
        let mut slot = self.cell.slot.lock();
        while slot.is_none() {
            self.cell.cv.wait(&mut slot);
        }
        slot.take().expect("slot checked non-empty")
    }

    /// Non-blocking check; `None` while the request is still queued or
    /// running.
    pub fn poll(&self) -> Option<Result<SolveOutcome, SessionError>> {
        self.cell.slot.lock().clone()
    }

    /// Block at most `timeout` for the request to resolve; `None` on
    /// timeout. The ticket stays usable afterwards — a later
    /// [`SolveTicket::wait`], `wait_timeout` or
    /// [`SolveTicket::poll`] still observes the result.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<SolveOutcome, SessionError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.cell.slot.lock();
        loop {
            if slot.is_some() {
                return slot.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.cell.cv.wait_for(&mut slot, deadline - now);
        }
    }
}

enum Cmd<T: SweepTopology + Send + Sync + 'static> {
    Submit {
        campaign: u64,
        seq: u64,
        request: SolveRequest,
        reply: Arc<TicketCell>,
        submitted: Instant,
    },
    Refine {
        mesh: Arc<T>,
        problem: Arc<SweepProblem>,
    },
    Pause,
    Resume,
    Shutdown,
}

/// Ingress queue shared by every handle and the driver. Closing and
/// draining happen under the same lock as submission, so a submit
/// either lands before the drain (and is resolved `Closed` by the
/// driver) or observes `closed` and resolves immediately — a ticket
/// can never be abandoned unresolved.
struct Ingress<T: SweepTopology + Send + Sync + 'static> {
    queue: VecDeque<Cmd<T>>,
    closed: bool,
}

struct Shared<T: SweepTopology + Send + Sync + 'static> {
    ingress: Mutex<Ingress<T>>,
    cv: Condvar,
}

impl<T: SweepTopology + Send + Sync + 'static> Shared<T> {
    fn push(&self, cmd: Cmd<T>) -> bool {
        let mut g = self.ingress.lock();
        if g.closed {
            return false;
        }
        g.queue.push_back(cmd);
        self.cv.notify_one();
        true
    }
}

/// An admitted request being served.
struct ActiveSolve {
    seq: u64,
    admission_index: u64,
    submitted: Instant,
    queue_wait: Option<f64>,
    progress: SolveProgress,
    reply: Arc<TicketCell>,
    /// Resolved at admission: the request's override or the session
    /// default.
    retry: RetryPolicy,
    /// Faulted epochs already retried for this request.
    retries: u32,
}

/// A resident sweep service: one world, one plan cache, one driver
/// thread serving queued solves from any number of concurrent
/// campaigns. See the [module docs](self) for the lifecycle.
pub struct SolverSession<T: SweepTopology + Send + Sync + 'static> {
    shared: Arc<Shared<T>>,
    driver: Option<JoinHandle<()>>,
    stats: Arc<Mutex<SessionStats>>,
    cache: Arc<PlanCache>,
    next_campaign: AtomicU64,
    /// Clone of the solver config's handle, kept so the pull-style
    /// exporter ([`SolverSession::metrics_text`]) reaches the registry
    /// without going through the driver.
    #[cfg(feature = "telemetry")]
    telemetry: TelemetryHandle,
}

impl<T: SweepTopology + Send + Sync + 'static> SolverSession<T> {
    /// Launch the session's driver thread over one problem shape. The
    /// resident universe itself launches lazily on the first epoch.
    pub fn launch(
        mesh: Arc<T>,
        problem: Arc<SweepProblem>,
        quadrature: QuadratureSet,
        options: SessionOptions,
    ) -> Self {
        let stats = Arc::new(Mutex::new(SessionStats {
            mesh_generation: problem.mesh_generation,
            ..Default::default()
        }));
        let cache = Arc::new(PlanCache::with_policy(options.eviction));
        let shared = Arc::new(Shared {
            ingress: Mutex::new(Ingress {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        });
        #[cfg(feature = "telemetry")]
        let telemetry = options.solver.telemetry.clone();
        let world = EpochWorld::new(mesh, problem, quadrature, options.solver);
        let driver = Driver {
            shared: shared.clone(),
            world,
            cache: cache.clone(),
            policy: options.admission,
            stats: stats.clone(),
            admitted: BTreeMap::new(),
            pending: VecDeque::new(),
            paused: false,
            admission_counter: 0,
            default_retry: options.retry,
            quarantine_after: options.quarantine_after,
            consecutive_faults: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            epoch_attempts: BTreeMap::new(),
        };
        let handle = thread::Builder::new()
            .name("jsweep-session".into())
            .spawn(move || driver.run())
            .expect("spawn session driver");
        SolverSession {
            shared,
            driver: Some(handle),
            stats,
            cache,
            next_campaign: AtomicU64::new(0),
            #[cfg(feature = "telemetry")]
            telemetry,
        }
    }

    /// Open a new campaign. Handles are cheap, clonable, and safe to
    /// move to other threads; clones share the campaign's sequence
    /// numbering.
    pub fn campaign(&self) -> CampaignHandle<T> {
        CampaignHandle {
            campaign: self.next_campaign.fetch_add(1, Ordering::Relaxed),
            shared: self.shared.clone(),
            seq: Arc::new(AtomicU64::new(0)),
            stats: self.stats.clone(),
        }
    }

    /// Swap the session's world for a refined (or otherwise rebuilt)
    /// mesh. In-flight admitted work drains on the old world first;
    /// requests admitted after the swap record fresh plans under the
    /// new generation stamp. A stale plan is structurally unreachable
    /// (the generation is part of the [`crate::replay::PlanKey`]).
    pub fn refine(&self, mesh: Arc<T>, problem: Arc<SweepProblem>) {
        assert_eq!(
            mesh.generation(),
            problem.mesh_generation,
            "mesh topology changed since SweepProblem::build; rebuild the problem"
        );
        self.shared.push(Cmd::Refine { mesh, problem });
    }

    /// Stop running epochs (submission stays open). Queued work keeps
    /// accumulating until [`SolverSession::resume`].
    pub fn pause(&self) {
        self.shared.push(Cmd::Pause);
    }

    /// Resume epoch execution after a [`SolverSession::pause`].
    pub fn resume(&self) {
        self.shared.push(Cmd::Resume);
    }

    /// Snapshot the session's accounting.
    pub fn stats(&self) -> SessionStats {
        self.stats.lock().clone()
    }

    /// Snapshot one campaign's accounting, if it ever submitted.
    pub fn campaign_stats(&self, campaign: u64) -> Option<CampaignStats> {
        self.stats.lock().campaigns.get(&campaign).cloned()
    }

    /// The session's shared plan cache (for capacity and eviction
    /// introspection; plans are inserted and served by the driver).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Render the session's metrics registry in Prometheus text
    /// exposition format (a pull endpoint would serve this verbatim).
    /// Pull-style gauges — the plan cache's hit/miss/eviction counts —
    /// are refreshed at call time; everything else is whatever the
    /// armed runtime has pushed so far. Returns an empty string while
    /// the session runs with a detached [`TelemetryHandle`].
    #[cfg(feature = "telemetry")]
    pub fn metrics_text(&self) -> String {
        let Some(t) = self.telemetry.telemetry() else {
            return String::new();
        };
        let m = t.metrics();
        m.describe(
            "jsweep_plan_cache_hits",
            "Replay-plan cache lookups that hit.",
        );
        m.describe(
            "jsweep_plan_cache_misses",
            "Replay-plan cache lookups that missed.",
        );
        m.describe(
            "jsweep_plan_cache_evictions",
            "Replay plans evicted from the session cache.",
        );
        m.gauge("jsweep_plan_cache_hits")
            .set(self.cache.hits() as f64);
        m.gauge("jsweep_plan_cache_misses")
            .set(self.cache.misses() as f64);
        m.gauge("jsweep_plan_cache_evictions")
            .set(self.cache.evictions() as f64);
        m.render_prometheus()
    }

    /// Drain admitted work, resolve everything still queued with
    /// [`SessionError::Closed`], retire the resident universe and join
    /// the driver. Idempotent; also runs on drop. A paused session is
    /// resumed first — shutdown waits for admitted work.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.driver.take() {
            self.shared.push(Cmd::Resume);
            self.shared.push(Cmd::Shutdown);
            handle.join().expect("session driver panicked");
        }
    }
}

impl<T: SweepTopology + Send + Sync + 'static> Drop for SolverSession<T> {
    fn drop(&mut self) {
        if let Some(handle) = self.driver.take() {
            self.shared.push(Cmd::Resume);
            self.shared.push(Cmd::Shutdown);
            // Propagating a panic out of drop would abort; the explicit
            // `shutdown` path surfaces driver panics instead.
            let _ = handle.join();
        }
    }
}

/// A campaign's submission endpoint. Obtained from
/// [`SolverSession::campaign`]; clonable across threads.
pub struct CampaignHandle<T: SweepTopology + Send + Sync + 'static> {
    campaign: u64,
    shared: Arc<Shared<T>>,
    seq: Arc<AtomicU64>,
    stats: Arc<Mutex<SessionStats>>,
}

impl<T: SweepTopology + Send + Sync + 'static> Clone for CampaignHandle<T> {
    fn clone(&self) -> Self {
        CampaignHandle {
            campaign: self.campaign,
            shared: self.shared.clone(),
            seq: self.seq.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<T: SweepTopology + Send + Sync + 'static> CampaignHandle<T> {
    /// This campaign's id (the key into
    /// [`SessionStats::campaigns`]).
    pub fn id(&self) -> u64 {
        self.campaign
    }

    /// Queue a solve. Returns immediately with the ticket to wait or
    /// poll on; requests of one campaign are served strictly in
    /// submission order.
    pub fn submit(&self, request: SolveRequest) -> SolveTicket {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(TicketCell::default());
        self.stats
            .lock()
            .campaigns
            .entry(self.campaign)
            .or_default()
            .submitted += 1;
        let sent = self.shared.push(Cmd::Submit {
            campaign: self.campaign,
            seq,
            request,
            reply: cell.clone(),
            submitted: Instant::now(),
        });
        if !sent {
            cell.fulfill(Err(SessionError::Closed));
        }
        SolveTicket { cell }
    }

    /// Snapshot this campaign's accounting.
    pub fn stats(&self) -> CampaignStats {
        self.stats
            .lock()
            .campaigns
            .get(&self.campaign)
            .cloned()
            .unwrap_or_default()
    }
}

struct Driver<T: SweepTopology + Send + Sync + 'static> {
    shared: Arc<Shared<T>>,
    world: EpochWorld<T>,
    cache: Arc<PlanCache>,
    policy: Box<dyn AdmissionPolicy>,
    stats: Arc<Mutex<SessionStats>>,
    /// Admitted solves per campaign; the head of each queue is the
    /// campaign's running request.
    admitted: BTreeMap<u64, VecDeque<ActiveSolve>>,
    /// Ingested commands not yet processed — `Refine`/`Shutdown` stall
    /// here until the admitted work drains.
    pending: VecDeque<Cmd<T>>,
    paused: bool,
    admission_counter: u64,
    /// Session-wide default retry policy (see [`SessionOptions`]).
    default_retry: RetryPolicy,
    /// Consecutive-fault quarantine threshold; 0 disables.
    quarantine_after: u32,
    /// Terminal faults since the campaign's last completed request.
    consecutive_faults: BTreeMap<u64, u32>,
    /// Campaigns locked out by quarantine.
    quarantined: BTreeSet<u64>,
    /// Epoch *attempts* per campaign — faulted ones included, which is
    /// what makes "fail epoch E of campaign C" fault injection
    /// deterministic under retries.
    epoch_attempts: BTreeMap<u64, u64>,
}

impl<T: SweepTopology + Send + Sync + 'static> Driver<T> {
    fn run(mut self) {
        loop {
            // Ingest everything available without blocking.
            let drained: Vec<Cmd<T>> = self.shared.ingress.lock().queue.drain(..).collect();
            for cmd in drained {
                self.ingest(cmd);
            }
            if self.process_pending() {
                self.finish();
                return;
            }
            if !self.paused && self.has_work() {
                self.run_one_epoch();
                continue;
            }
            // Idle (or paused): sleep until the next command.
            let mut g = self.shared.ingress.lock();
            while g.queue.is_empty() {
                self.shared.cv.wait(&mut g);
            }
        }
    }

    fn has_work(&self) -> bool {
        !self.admitted.is_empty()
    }

    /// Pause/resume apply the moment they are seen — even while a
    /// refinement or shutdown is stalled waiting for the backlog —
    /// everything else queues in order.
    fn ingest(&mut self, cmd: Cmd<T>) {
        match cmd {
            Cmd::Pause => self.paused = true,
            Cmd::Resume => self.paused = false,
            other => self.pending.push_back(other),
        }
    }

    /// Work through pending commands in arrival order. Returns `true`
    /// when a shutdown is due now.
    fn process_pending(&mut self) -> bool {
        while let Some(front) = self.pending.front() {
            match front {
                Cmd::Submit { .. } => {
                    let Some(Cmd::Submit {
                        campaign,
                        seq,
                        request,
                        reply,
                        submitted,
                    }) = self.pending.pop_front()
                    else {
                        unreachable!("front checked")
                    };
                    self.admit(campaign, seq, request, reply, submitted);
                }
                Cmd::Refine { .. } => {
                    // Refinement is a barrier: the admitted backlog
                    // finishes on the old world first.
                    if self.has_work() {
                        return false;
                    }
                    let Some(Cmd::Refine { mesh, problem }) = self.pending.pop_front() else {
                        unreachable!("front checked")
                    };
                    self.apply_refine(mesh, problem);
                }
                Cmd::Shutdown => {
                    if self.has_work() {
                        return false;
                    }
                    self.pending.pop_front();
                    return true;
                }
                Cmd::Pause | Cmd::Resume => {
                    let Some(cmd) = self.pending.pop_front() else {
                        unreachable!("front checked")
                    };
                    self.ingest(cmd);
                }
            }
        }
        false
    }

    fn admit(
        &mut self,
        campaign: u64,
        seq: u64,
        request: SolveRequest,
        reply: Arc<TicketCell>,
        submitted: Instant,
    ) {
        if self.quarantined.contains(&campaign) {
            return self.reject(
                campaign,
                reply,
                format!(
                    "campaign quarantined after {} consecutive faults",
                    self.quarantine_after
                ),
            );
        }
        if request.materials.num_cells() != self.world.mesh.num_cells() {
            return self.reject(
                campaign,
                reply,
                format!(
                    "materials cover {} cells, mesh has {}",
                    request.materials.num_cells(),
                    self.world.mesh.num_cells()
                ),
            );
        }
        if self.world.config.resident {
            // Resident programs cannot change their group count; the
            // constraint extends to the not-yet-launched backlog (its
            // first epoch will fix the universe's shape).
            let current = self.world.resident_groups().or_else(|| {
                self.admitted
                    .values()
                    .flat_map(|q| q.iter())
                    .next()
                    .map(|s| s.progress.materials.num_groups())
            });
            if let Some(groups) = current {
                if groups != request.materials.num_groups() {
                    return self.reject(
                        campaign,
                        reply,
                        format!(
                            "request has {} energy groups, resident programs have {groups}",
                            request.materials.num_groups()
                        ),
                    );
                }
            }
        }
        let max_iterations = request
            .max_iterations
            .unwrap_or(self.world.config.max_iterations);
        let tolerance = request.tolerance.unwrap_or(self.world.config.tolerance);
        let retry = request.retry.unwrap_or(self.default_retry);
        let mut progress = self.world.begin_solve(
            request.materials,
            max_iterations,
            tolerance,
            Some(&self.cache),
        );
        {
            let mut s = self.stats.lock();
            let cs = s.campaigns.entry(campaign).or_default();
            if self.world.config.coarsen {
                if progress.plan_from_cache {
                    cs.plan_cache_hits += 1;
                } else {
                    cs.plan_cache_misses += 1;
                }
            }
        }
        if max_iterations == 0 {
            // Degenerate request: nothing to run — mirror the solo
            // solver, which returns the zero-flux starting state.
            let wait = submitted.elapsed().as_secs_f64();
            self.stats
                .lock()
                .campaigns
                .entry(campaign)
                .or_default()
                .completed += 1;
            reply.fulfill(Ok(SolveOutcome {
                campaign,
                seq,
                solution: progress.into_solution(),
                mesh_generation: self.world.problem.mesh_generation,
                queue_wait_seconds: wait,
                span_id: 0,
            }));
            return;
        }
        let admission_index = self.admission_counter;
        self.admission_counter += 1;
        // The request's trace span id: nonzero (0 means "untracked")
        // and deterministic under any admission policy, so a ticket's
        // epochs can be located in an exported trace by id alone.
        progress.span = admission_index + 1;
        self.admitted
            .entry(campaign)
            .or_default()
            .push_back(ActiveSolve {
                seq,
                admission_index,
                submitted,
                queue_wait: None,
                progress,
                reply,
                retry,
                retries: 0,
            });
    }

    fn reject(&mut self, campaign: u64, reply: Arc<TicketCell>, why: String) {
        self.stats
            .lock()
            .campaigns
            .entry(campaign)
            .or_default()
            .rejected += 1;
        reply.fulfill(Err(SessionError::Rejected(why)));
    }

    fn run_one_epoch(&mut self) {
        let candidates: Vec<EpochCandidate> = self
            .admitted
            .iter()
            .map(|(&campaign, q)| {
                let s = q.front().expect("campaign queues are never left empty");
                EpochCandidate {
                    campaign,
                    seq: s.seq,
                    admission_index: s.admission_index,
                    epochs_run: s.progress.iterations,
                }
            })
            .collect();
        let pick = self.policy.next_epoch(&candidates);
        assert!(
            pick < candidates.len(),
            "admission policy returned candidate {pick} of {}",
            candidates.len()
        );
        let campaign = candidates[pick].campaign;
        let had_universe = self.world.has_universe();
        let queue = self
            .admitted
            .get_mut(&campaign)
            .expect("picked campaign exists");
        let solve = queue
            .front_mut()
            .expect("campaign queues are never left empty");
        if solve.queue_wait.is_none() {
            let wait = solve.submitted.elapsed().as_secs_f64();
            solve.queue_wait = Some(wait);
            note_queue_wait(&self.world.config.telemetry, wait);
        }
        let plan_generation = solve.progress.plan.as_ref().map(|p| p.mesh_generation);
        // Count the attempt before running it: "fail epoch E of
        // campaign C" injection keys on attempt numbers, faulted
        // attempts included, which keeps the injection deterministic
        // under retries.
        let attempt = {
            let a = self.epoch_attempts.entry(campaign).or_insert(0);
            let cur = *a;
            *a += 1;
            cur
        };
        let injected = self
            .world
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.take_epoch_fail(campaign, attempt));
        let outcome = if injected {
            Err(EpochFault {
                rank: 0,
                worker: 0,
                program: None,
                payload: format!("injected failure of campaign {campaign} epoch attempt {attempt}"),
                kind: FaultKind::Injected,
            })
        } else {
            advance_one_epoch(&mut self.world, &mut solve.progress, Some(&self.cache))
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(fault) => {
                // The faulted epoch may still have launched the
                // universe it faulted in; count the launch before
                // `handle_fault` retires it, or the no-leak invariant
                // (launched == retired) would drift on every fault.
                if !had_universe && self.world.has_universe() {
                    self.stats.lock().universes_launched += 1;
                }
                return self.handle_fault(campaign, fault);
            }
        };
        // A completed epoch clears the campaign's consecutive-fault
        // streak: quarantine is for campaigns that *keep* failing.
        self.consecutive_faults.remove(&campaign);
        let epoch_stats = solve.progress.stats.last().expect("epoch recorded stats");
        {
            let mut s = self.stats.lock();
            s.epochs_run += 1;
            if !had_universe && self.world.has_universe() {
                s.universes_launched += 1;
            }
            s.epoch_log.push(EpochRecord {
                campaign,
                seq: solve.seq,
                iteration: solve.progress.iterations,
                replayed: outcome.replayed,
                plan_generation: if outcome.replayed {
                    plan_generation
                } else {
                    None
                },
                mesh_generation: self.world.problem.mesh_generation,
                faulted: false,
            });
            let cs = s.campaigns.entry(campaign).or_default();
            cs.epochs_run += 1;
            cs.epoch_wall_seconds += epoch_stats.wall_seconds;
            cs.work_done += epoch_stats.work_done;
            cs.compute_calls += epoch_stats.compute_calls;
            cs.worker_drain_seconds += epoch_stats.worker_drain_seconds.iter().sum::<f64>();
        }
        set_session_gauge(
            &self.world.config.telemetry,
            "jsweep_flux_fresh_allocations",
            "Flux accumulators allocated fresh (pool misses) by the resident world.",
            self.world.fresh_flux_allocations() as f64,
        );
        if outcome.done {
            let solve = queue.pop_front().expect("head just served");
            if queue.is_empty() {
                self.admitted.remove(&campaign);
            }
            let wait = solve.queue_wait.unwrap_or(0.0);
            {
                let mut s = self.stats.lock();
                let cs = s.campaigns.entry(campaign).or_default();
                cs.completed += 1;
                cs.queue_wait_seconds += wait;
            }
            bump_session_counter(
                &self.world.config.telemetry,
                "jsweep_session_solves_total",
                "Requests the session resolved with a solution.",
            );
            let span_id = solve.progress.span;
            solve.reply.fulfill(Ok(SolveOutcome {
                campaign,
                seq: solve.seq,
                solution: solve.progress.into_solution(),
                mesh_generation: self.world.problem.mesh_generation,
                queue_wait_seconds: wait,
                span_id,
            }));
        }
    }

    /// Contain a faulted epoch: account it, decide between retry and
    /// terminal failure for the offending request (only that one —
    /// the rest of the queue keeps being served), then relaunch the
    /// universe.
    ///
    /// Ordering matters: the ticket resolves *before*
    /// [`Driver::retire_world`], because retiring joins the faulted
    /// universe's threads — after a watchdog stall that join waits out
    /// the stuck compute, and the requester should not.
    fn handle_fault(&mut self, campaign: u64, fault: EpochFault) {
        let queue = self
            .admitted
            .get_mut(&campaign)
            .expect("faulted campaign exists");
        let solve = queue.front_mut().expect("faulted campaign has a head");
        // The attempted iteration: the faulted epoch would have been
        // iteration `iterations + 1`, and `progress` was untouched.
        let iteration = solve.progress.iterations + 1;
        let retrying = solve.retries < solve.retry.max_retries;
        let backoff = solve.retry.backoff;
        {
            let mut s = self.stats.lock();
            s.faults += 1;
            s.epoch_log.push(EpochRecord {
                campaign,
                seq: solve.seq,
                iteration,
                replayed: false,
                plan_generation: None,
                mesh_generation: self.world.problem.mesh_generation,
                faulted: true,
            });
            if retrying {
                s.retries += 1;
            }
            let cs = s.campaigns.entry(campaign).or_default();
            cs.faults += 1;
            if retrying {
                cs.retries += 1;
            }
        }
        bump_session_counter(
            &self.world.config.telemetry,
            "jsweep_session_faults_total",
            "Faulted epochs observed by the session driver.",
        );
        if retrying {
            bump_session_counter(
                &self.world.config.telemetry,
                "jsweep_session_retries_total",
                "Epoch retries spent recovering faulted requests.",
            );
        }
        if retrying {
            // The solve stays at the head of its queue with its
            // progress untouched: the retried epoch reruns the same
            // source iteration, so a recovered solve's flux sequence
            // is bit-identical to an unfaulted one.
            solve.retries += 1;
        } else {
            let solve = queue.pop_front().expect("head just faulted");
            if queue.is_empty() {
                self.admitted.remove(&campaign);
            }
            let retries = solve.retries;
            solve.reply.fulfill(Err(SessionError::Failed(FaultReport {
                campaign,
                seq: solve.seq,
                iteration,
                retries,
                fault,
            })));
            {
                let mut s = self.stats.lock();
                s.campaigns.entry(campaign).or_default().failed += 1;
            }
            let streak = self.consecutive_faults.entry(campaign).or_insert(0);
            *streak += 1;
            if self.quarantine_after > 0 && *streak >= self.quarantine_after {
                self.quarantine(campaign);
            }
        }
        // Relaunch last: the offending ticket already resolved (or is
        // queued for retry), so blocking on the faulted universe's
        // threads here delays no requester. The next epoch launches a
        // fresh universe lazily on the same mesh generation — every
        // plan in the shared cache keys on the generation, not the
        // universe, so replay-mode requests keep hitting.
        let had_universe = self.world.has_universe();
        self.retire_world();
        if had_universe {
            self.stats.lock().relaunches += 1;
            bump_session_counter(
                &self.world.config.telemetry,
                "jsweep_session_relaunches_total",
                "Universe relaunches forced by faulted epochs.",
            );
        }
        if retrying && !backoff.is_zero() {
            thread::sleep(backoff);
        }
    }

    /// Lock a campaign out: flush its queued requests as rejected and
    /// refuse everything it submits from now on.
    fn quarantine(&mut self, campaign: u64) {
        self.quarantined.insert(campaign);
        let why = format!(
            "campaign quarantined after {} consecutive faults",
            self.quarantine_after
        );
        let flushed = self.admitted.remove(&campaign).unwrap_or_default();
        {
            let mut s = self.stats.lock();
            let cs = s.campaigns.entry(campaign).or_default();
            cs.quarantined = true;
            cs.rejected += flushed.len() as u64;
        }
        for solve in flushed {
            solve
                .reply
                .fulfill(Err(SessionError::Rejected(why.clone())));
        }
    }

    fn apply_refine(&mut self, mesh: Arc<T>, problem: Arc<SweepProblem>) {
        self.retire_world();
        let config = self.world.config.clone();
        let quadrature = self.world.quadrature.clone();
        self.world = EpochWorld::new(mesh, problem, quadrature, config);
        self.stats.lock().mesh_generation = self.world.problem.mesh_generation;
    }

    fn retire_world(&mut self) {
        let had = self.world.has_universe();
        self.world.retire();
        if had {
            self.stats.lock().universes_retired += 1;
        }
    }

    /// Close the ingress and resolve everything unserved. Closing and
    /// draining under the ingress lock means no submit can slip
    /// between the drain and the close with a forever-pending ticket.
    fn finish(&mut self) {
        self.retire_world();
        let leftovers: Vec<Cmd<T>> = {
            let mut g = self.shared.ingress.lock();
            g.closed = true;
            g.queue.drain(..).collect()
        };
        for cmd in self.pending.drain(..).chain(leftovers) {
            if let Cmd::Submit { reply, .. } = cmd {
                reply.fulfill(Err(SessionError::Closed));
            }
        }
    }
}

/// Bump a session-tier counter (no-op while the handle is detached or
/// the telemetry disarmed; these sit on driver cold paths, never inside
/// an epoch).
#[cfg(feature = "telemetry")]
fn bump_session_counter(h: &TelemetryHandle, name: &'static str, help: &'static str) {
    let Some(t) = h.telemetry() else { return };
    if !t.is_armed() {
        return;
    }
    let m = t.metrics();
    m.describe(name, help);
    m.counter(name).inc();
}

/// Bump a session-tier counter (compiled out: no-op).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
fn bump_session_counter(_h: &TelemetryHandle, _name: &'static str, _help: &'static str) {}

/// Set a session-tier gauge (no-op while detached or disarmed).
#[cfg(feature = "telemetry")]
fn set_session_gauge(h: &TelemetryHandle, name: &'static str, help: &'static str, value: f64) {
    let Some(t) = h.telemetry() else { return };
    if !t.is_armed() {
        return;
    }
    let m = t.metrics();
    m.describe(name, help);
    m.gauge(name).set(value);
}

/// Set a session-tier gauge (compiled out: no-op).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
fn set_session_gauge(_h: &TelemetryHandle, _name: &'static str, _help: &'static str, _value: f64) {}

/// Observe one request's queue wait into its histogram (no-op while
/// detached or disarmed).
#[cfg(feature = "telemetry")]
fn note_queue_wait(h: &TelemetryHandle, seconds: f64) {
    let Some(t) = h.telemetry() else { return };
    if !t.is_armed() {
        return;
    }
    let m = t.metrics();
    m.describe(
        "jsweep_session_queue_wait_seconds",
        "Time a request spent queued before its first epoch.",
    );
    m.histogram("jsweep_session_queue_wait_seconds", obs::SECONDS_BUCKETS)
        .observe(seconds);
}

/// Observe one request's queue wait (compiled out: no-op).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
fn note_queue_wait(_h: &TelemetryHandle, _seconds: f64) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xs::Material;
    use jsweep_graph::problem::ProblemOptions;
    use jsweep_mesh::{partition, StructuredMesh};

    fn candidate(campaign: u64, admission_index: u64) -> EpochCandidate {
        EpochCandidate {
            campaign,
            seq: 0,
            admission_index,
            epochs_run: 0,
        }
    }

    #[test]
    fn fifo_serves_earliest_admission() {
        let mut p = Fifo;
        let c = [candidate(3, 7), candidate(1, 2), candidate(2, 5)];
        assert_eq!(p.next_epoch(&c), 1);
        assert_eq!(p.next_epoch(&c), 1, "stateless: same pick again");
    }

    #[test]
    fn round_robin_cycles_campaigns() {
        let mut p = RoundRobin::default();
        let c = [candidate(1, 0), candidate(4, 1), candidate(9, 2)];
        let picks: Vec<u64> = (0..6).map(|_| c[p.next_epoch(&c)].campaign).collect();
        assert_eq!(picks, vec![1, 4, 9, 1, 4, 9]);
        // A vanished campaign (completed) is skipped naturally.
        let c2 = [candidate(1, 0), candidate(9, 2)];
        assert_eq!(c2[p.next_epoch(&c2)].campaign, 1, "wraps past missing 4");
    }

    fn session_world() -> (
        Arc<StructuredMesh>,
        Arc<SweepProblem>,
        QuadratureSet,
        Arc<MaterialSet>,
    ) {
        let m = Arc::new(StructuredMesh::unit(4, 4, 4));
        let quad = QuadratureSet::sn(2);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let prob = Arc::new(SweepProblem::build(
            m.as_ref(),
            ps,
            &quad,
            &ProblemOptions::default(),
        ));
        let mats = Arc::new(MaterialSet::homogeneous(
            64,
            Material::uniform(1, 1.0, 0.3, 1.0),
        ));
        (m, prob, quad, mats)
    }

    fn quick_options() -> SessionOptions {
        SessionOptions {
            solver: SnConfig {
                max_iterations: 4,
                grain: 16,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn session_round_trips_a_solve() {
        let (m, prob, quad, mats) = session_world();
        let cfg = quick_options();
        let solo = crate::solver::solve_parallel(
            m.clone(),
            prob.clone(),
            &quad,
            mats.clone(),
            &cfg.solver,
        );
        let mut session = SolverSession::launch(m, prob, quad, cfg);
        let campaign = session.campaign();
        let out = campaign
            .submit(SolveRequest {
                materials: mats,
                max_iterations: None,
                tolerance: None,
                retry: None,
            })
            .wait()
            .expect("solve served");
        assert_eq!(out.solution.phi, solo.phi, "session flux == solo flux");
        assert_eq!(out.solution.iterations, solo.iterations);
        session.shutdown();
        let stats = session.stats();
        assert_eq!(stats.universes_launched, 1);
        assert_eq!(stats.universes_retired, 1);
        assert_eq!(stats.campaigns[&campaign.id()].completed, 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn session_assigns_span_ids_and_exports_metrics() {
        let (m, prob, quad, mats) = session_world();
        let t = Arc::new(obs::Telemetry::new());
        t.arm();
        let mut cfg = quick_options();
        cfg.solver.telemetry = TelemetryHandle::attach(t.clone());
        let mut session = SolverSession::launch(m, prob, quad, cfg);
        let campaign = session.campaign();
        let first = campaign
            .submit(SolveRequest::new(mats.clone()))
            .wait()
            .expect("first solve served");
        let second = campaign
            .submit(SolveRequest::new(mats))
            .wait()
            .expect("second solve served");
        assert_eq!(first.span_id, 1, "first admission gets span 1");
        assert_eq!(second.span_id, 2, "spans are the admission order");
        // Every epoch event of a request carries its ticket's span id.
        let lanes = t.snapshot();
        let epoch_spans: Vec<u64> = lanes
            .iter()
            .flat_map(|l| l.events.iter())
            .filter(|e| e.kind == obs::EventKind::Epoch)
            .map(|e| e.b)
            .collect();
        assert!(epoch_spans.contains(&first.span_id), "{epoch_spans:?}");
        assert!(epoch_spans.contains(&second.span_id), "{epoch_spans:?}");
        let text = session.metrics_text();
        assert!(text.contains("jsweep_session_solves_total 2"), "{text}");
        // The first solve records the plan (miss), the second replays
        // it (hit) — the pull gauges reflect the shared cache's truth.
        assert!(text.contains("jsweep_plan_cache_hits 1"), "{text}");
        assert!(text.contains("jsweep_plan_cache_misses 1"), "{text}");
        assert!(
            text.contains("jsweep_session_queue_wait_seconds_count 2"),
            "{text}"
        );
        session.shutdown();
    }

    #[test]
    fn mismatched_materials_are_rejected_not_panicked() {
        let (m, prob, quad, mats) = session_world();
        let mut session = SolverSession::launch(m, prob, quad, quick_options());
        let campaign = session.campaign();
        // Wrong cell count.
        let bad = Arc::new(MaterialSet::homogeneous(
            27,
            Material::uniform(1, 1.0, 0.3, 1.0),
        ));
        let err = campaign
            .submit(SolveRequest {
                materials: bad,
                max_iterations: None,
                tolerance: None,
                retry: None,
            })
            .wait()
            .expect_err("rejected");
        assert!(matches!(err, SessionError::Rejected(_)));
        // Wrong group count once the resident shape is fixed.
        let ok = campaign.submit(SolveRequest {
            materials: mats,
            max_iterations: None,
            tolerance: None,
            retry: None,
        });
        let two_group = Arc::new(MaterialSet::homogeneous(
            64,
            Material::uniform(2, 1.0, 0.3, 1.0),
        ));
        let bad_groups = campaign.submit(SolveRequest {
            materials: two_group,
            max_iterations: None,
            tolerance: None,
            retry: None,
        });
        assert!(ok.wait().is_ok());
        assert!(matches!(bad_groups.wait(), Err(SessionError::Rejected(_))));
        session.shutdown();
        assert_eq!(session.campaign_stats(campaign.id()).unwrap().rejected, 2);
    }

    #[test]
    fn submits_after_shutdown_resolve_closed() {
        let (m, prob, quad, mats) = session_world();
        let mut session = SolverSession::launch(m, prob, quad, quick_options());
        let campaign = session.campaign();
        session.shutdown();
        let err = campaign
            .submit(SolveRequest {
                materials: mats,
                max_iterations: None,
                tolerance: None,
                retry: None,
            })
            .wait()
            .expect_err("session is gone");
        assert_eq!(err, SessionError::Closed);
    }
}
