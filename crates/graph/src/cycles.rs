//! Cycle detection and breaking for sweep dependency graphs.
//!
//! On general (deformed or poorly shaped) meshes, a sweep direction can
//! induce *cyclic* cell dependencies — a well-known pathology of
//! unstructured transport sweeps (Pautz 2002). The standard remedy is to
//! break each cycle at its weakest coupling: the edge whose face is most
//! nearly parallel to the sweep direction (smallest `|Ω·n|A`), treating
//! that face's incoming flux as lagged from the previous iteration.
//!
//! [`break_cycles`] implements that on a generic weighted edge list and
//! returns the set of removed edge indices; subgraph construction then
//! skips the corresponding `(src, dst)` cell pairs.

use crate::dag::{topo_sort, Csr};
use std::collections::HashSet;

/// Remove a minimal-weight set of edges until the graph is acyclic.
///
/// Strategy: run Kahn; while vertices remain (i.e. cycles exist), find
/// the lightest edge among the remaining (cycle-involved) vertices,
/// remove it, and repeat. This is a heuristic (minimum feedback arc set
/// is NP-hard) but removes few edges on meshes, where cycles are short.
///
/// Returns indices into `edges` of the removed edges.
pub fn break_cycles(n: usize, edges: &[(u32, u32, f64)]) -> HashSet<usize> {
    let mut removed: HashSet<usize> = HashSet::new();
    loop {
        let live: Vec<(u32, u32)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, &(s, d, _))| (s, d))
            .collect();
        let g = Csr::from_edges(n, &live);
        let Err(remaining) = topo_sort(&g) else {
            return removed;
        };
        let in_cycle: HashSet<u32> = remaining.into_iter().collect();
        // Lightest live edge between two cycle-involved vertices.
        let victim = edges
            .iter()
            .enumerate()
            .filter(|(i, &(s, d, _))| {
                !removed.contains(i) && in_cycle.contains(&s) && in_cycle.contains(&d)
            })
            .min_by(|(_, a), (_, b)| a.2.partial_cmp(&b.2).unwrap())
            .map(|(i, _)| i)
            .expect("cyclic graph must contain an edge between cycle vertices");
        removed.insert(victim);
    }
}

/// Detect whether a direction induces cycles on a mesh, and compute the
/// broken `(src_cell, dst_cell)` pairs if so.
///
/// Most meshes need no breaking; the returned set is usually empty.
pub fn broken_edges_for_direction<T: jsweep_mesh::SweepTopology + ?Sized>(
    mesh: &T,
    dir: [f64; 3],
) -> HashSet<(u32, u32)> {
    let n = mesh.num_cells();
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    for c in 0..n {
        for f in 0..mesh.num_faces(c) {
            let face = mesh.face(c, f);
            let flow = face.flow(dir);
            if flow > 0.0 {
                if let Some(nb) = face.neighbor.cell() {
                    edges.push((c as u32, nb as u32, flow));
                }
            }
        }
    }
    break_cycles(n, &edges)
        .into_iter()
        .map(|i| (edges[i].0, edges[i].1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::is_acyclic;
    use jsweep_mesh::StructuredMesh;

    fn live_graph(n: usize, edges: &[(u32, u32, f64)], removed: &HashSet<usize>) -> Csr {
        let live: Vec<(u32, u32)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, &(s, d, _))| (s, d))
            .collect();
        Csr::from_edges(n, &live)
    }

    #[test]
    fn acyclic_graph_untouched() {
        let edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.1)];
        assert!(break_cycles(3, &edges).is_empty());
    }

    #[test]
    fn triangle_cycle_breaks_lightest_edge() {
        let edges = [(0, 1, 5.0), (1, 2, 3.0), (2, 0, 0.5)];
        let removed = break_cycles(3, &edges);
        assert_eq!(removed.len(), 1);
        assert!(removed.contains(&2), "should remove the 0.5 edge");
        assert!(is_acyclic(&live_graph(3, &edges, &removed)));
    }

    #[test]
    fn two_disjoint_cycles_break_two_edges() {
        let edges = [(0, 1, 2.0), (1, 0, 1.0), (2, 3, 4.0), (3, 2, 3.0)];
        let removed = break_cycles(4, &edges);
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&1) && removed.contains(&3));
        assert!(is_acyclic(&live_graph(4, &edges, &removed)));
    }

    #[test]
    fn nested_cycles_resolved() {
        // 0->1->2->0 and 1->3->1 sharing vertex 1.
        let edges = [
            (0, 1, 10.0),
            (1, 2, 10.0),
            (2, 0, 1.0),
            (1, 3, 10.0),
            (3, 1, 2.0),
        ];
        let removed = break_cycles(4, &edges);
        assert!(is_acyclic(&live_graph(4, &edges, &removed)));
        assert!(removed.len() <= 2);
    }

    #[test]
    fn structured_mesh_has_no_cycles() {
        let m = StructuredMesh::unit(4, 4, 4);
        for dir in [[1.0, 1.0, 1.0], [0.3, -0.8, 0.52], [-1.0, 0.0, 0.0]] {
            assert!(broken_edges_for_direction(&m, dir).is_empty());
        }
    }

    #[test]
    fn tet_mesh_kuhn_has_no_cycles_for_probe_directions() {
        let m = jsweep_mesh::tetgen::cube(2, 1.0);
        let q = jsweep_quadrature::QuadratureSet::sn(4);
        for (_, o) in q.iter() {
            let broken = broken_edges_for_direction(&m, o.dir);
            assert!(broken.is_empty(), "direction {:?} produced cycles", o.dir);
        }
    }

    #[test]
    fn self_loop_is_removed() {
        let edges = [(0, 0, 1.0), (0, 1, 2.0)];
        let removed = break_cycles(2, &edges);
        assert_eq!(removed.len(), 1);
        assert!(removed.contains(&0));
    }
}
