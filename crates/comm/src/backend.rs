//! The pluggable transport seam: [`CommBackend`] and the default
//! in-process [`ThreadBackend`].
//!
//! [`crate::Comm`] owns everything transport-independent — the stash,
//! `recv_match`, `drain_user`, barriers and reductions — and delegates
//! raw tagged delivery to a boxed [`CommBackend`]. A backend provides
//! exactly four operations (send, non-blocking recv, blocking recv,
//! close) plus its identity; everything a backend promises is pinned by
//! `tests/comm_conformance.rs`, the executable contract any future
//! transport (TCP, shared-memory rings) must pass.

use crate::Message;
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender, TryRecvError};

/// A transport-level failure surfaced by a [`CommBackend`].
///
/// Errors are *sticky* diagnoses of a broken world, not transient
/// conditions: once a peer is gone the endpoint keeps reporting it
/// (after first delivering any messages that were already buffered).
/// The runtime maps this into the fault taxonomy as a rank-death
/// `EpochFault`, so the session's retry/relaunch machinery covers
/// transport failure the same way it covers panics and stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The connection to `peer` is gone without a graceful close —
    /// the process or thread behind it died.
    PeerClosed {
        /// Rank id of the vanished peer.
        peer: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerClosed { peer } => write!(f, "peer rank {peer} hung up"),
        }
    }
}

impl std::error::Error for CommError {}

/// One rank's raw transport endpoint.
///
/// Contract (pinned by `tests/comm_conformance.rs`):
///
/// * **Per-pair FIFO** — messages from one sender arrive in send order;
///   no ordering is promised across senders.
/// * **Self-send** — `send(rank, ..)` is delivered through the same
///   receive path as remote messages.
/// * **Buffered-then-error** — when a peer dies, messages it sent
///   before dying are still delivered; only once the buffer is dry does
///   `try_recv`/`recv` return [`CommError::PeerClosed`].
/// * **Graceful close is silent** — a peer that called [`close`]
///   (rather than dying) simply never delivers again; it is not an
///   error.
/// * `send` takes `&self` so the master can send while logically
///   holding the endpoint; `try_recv` must be cheap enough to poll in
///   the master drain loop.
///
/// [`close`]: CommBackend::close
pub trait CommBackend: Send {
    /// This endpoint's rank id.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Asynchronous tagged send. Fails with [`CommError::PeerClosed`]
    /// if the destination endpoint is gone.
    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError>;

    /// Non-blocking receive of the next message of any tag.
    /// `Ok(None)` means "nothing available right now".
    fn try_recv(&mut self) -> Result<Option<Message>, CommError>;

    /// Blocking receive of the next message of any tag.
    fn recv(&mut self) -> Result<Message, CommError>;

    /// Gracefully tear down this endpoint, telling peers the silence
    /// that follows is intentional (not a death). Idempotent. Dropping
    /// an endpoint *without* closing it is how peers detect a death.
    fn close(&mut self);

    /// Payload bytes pushed into the fabric by this endpoint
    /// (wire-level framing included where the transport has any).
    fn bytes_sent(&self) -> u64;

    /// Payload bytes received from the fabric by this endpoint
    /// (wire-level framing included where the transport has any) —
    /// the receive-side mirror of [`CommBackend::bytes_sent`].
    fn bytes_received(&self) -> u64;

    /// Messages pushed into the fabric by this endpoint.
    fn frames_sent(&self) -> u64;

    /// Messages received from the fabric by this endpoint.
    fn frames_received(&self) -> u64;
}

/// The default fabric: ranks as threads in one address space, crossbeam
/// channels as the wire. Zero-copy, unbounded, never drops.
///
/// One asymmetry with process-grade backends is inherent: because every
/// endpoint holds a sender to itself, the receive side can never
/// disconnect, so a dead peer is only observable on **send** (the
/// channel to it is gone). A blocking `recv` from a peer that died
/// without sending will wait forever — acceptable in-process, where the
/// runtime always detects the death through its own send traffic or the
/// watchdog. See `docs/transport.md` for the backend matrix.
pub struct ThreadBackend {
    rank: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    bytes_sent: std::sync::atomic::AtomicU64,
    frames_sent: std::sync::atomic::AtomicU64,
    bytes_received: std::sync::atomic::AtomicU64,
    frames_received: std::sync::atomic::AtomicU64,
}

impl ThreadBackend {
    /// Create the `n` connected endpoints of an in-process world, in
    /// rank order.
    pub fn endpoints(n: usize) -> Vec<ThreadBackend> {
        assert!(n > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = crossbeam::channel::unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| ThreadBackend {
                rank,
                senders: senders.clone(),
                receiver,
                bytes_sent: std::sync::atomic::AtomicU64::new(0),
                frames_sent: std::sync::atomic::AtomicU64::new(0),
                bytes_received: std::sync::atomic::AtomicU64::new(0),
                frames_received: std::sync::atomic::AtomicU64::new(0),
            })
            .collect()
    }

    /// Book one received message into the receive-side counters.
    fn note_received(&self, m: &Message) {
        self.bytes_received
            .fetch_add(m.payload.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.frames_received
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl CommBackend for ThreadBackend {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        let n = payload.len() as u64;
        self.senders[to]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .map_err(|_| CommError::PeerClosed { peer: to })?;
        self.bytes_sent
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        self.frames_sent
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, CommError> {
        match self.receiver.try_recv() {
            Ok(m) => {
                self.note_received(&m);
                Ok(Some(m))
            }
            Err(TryRecvError::Empty) => Ok(None),
            // Unreachable while this endpoint is alive (it holds a
            // sender to itself), but diagnose rather than panic.
            Err(TryRecvError::Disconnected) => Err(CommError::PeerClosed { peer: self.rank }),
        }
    }

    fn recv(&mut self) -> Result<Message, CommError> {
        let m = self
            .receiver
            .recv()
            .map_err(|_| CommError::PeerClosed { peer: self.rank })?;
        self.note_received(&m);
        Ok(m)
    }

    fn close(&mut self) {
        // Channels tear down when dropped; nothing to announce — the
        // thread world has no death-vs-close ambiguity to resolve.
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn bytes_received(&self) -> u64 {
        self.bytes_received
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    fn frames_sent(&self) -> u64 {
        self.frames_sent.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn frames_received(&self) -> u64 {
        self.frames_received
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_send_to_dropped_peer_is_an_error_not_a_panic() {
        let mut world = ThreadBackend::endpoints(2);
        let b1 = world.pop().unwrap();
        let b0 = world.pop().unwrap();
        drop(b1);
        let err = b0.send(1, 7, Bytes::new()).unwrap_err();
        assert_eq!(err, CommError::PeerClosed { peer: 1 });
        // Self-send still works after a peer death.
        b0.send(0, 7, Bytes::new()).unwrap();
    }

    #[test]
    fn thread_bytes_sent_counts_payload() {
        let mut world = ThreadBackend::endpoints(1);
        let mut b = world.pop().unwrap();
        b.send(0, 1, Bytes::copy_from_slice(&[0u8; 10])).unwrap();
        b.send(0, 2, Bytes::copy_from_slice(&[0u8; 5])).unwrap();
        assert_eq!(b.bytes_sent(), 15);
        assert_eq!(b.try_recv().unwrap().unwrap().tag, 1);
    }

    /// Receive-side accounting mirrors the send side (this PR): both
    /// backends count bytes and frames in both directions, so
    /// transport metrics are symmetric.
    #[test]
    fn thread_receive_counters_mirror_send() {
        let mut world = ThreadBackend::endpoints(1);
        let mut b = world.pop().unwrap();
        b.send(0, 1, Bytes::copy_from_slice(&[0u8; 10])).unwrap();
        b.send(0, 2, Bytes::copy_from_slice(&[0u8; 5])).unwrap();
        assert_eq!(b.frames_sent(), 2);
        assert_eq!((b.bytes_received(), b.frames_received()), (0, 0));
        let _ = b.try_recv().unwrap().unwrap();
        assert_eq!((b.bytes_received(), b.frames_received()), (10, 1));
        let _ = b.recv().unwrap();
        assert_eq!((b.bytes_received(), b.frames_received()), (15, 2));
        assert_eq!(b.bytes_received(), b.bytes_sent());
    }
}
