//! Tabular experiment output: stdout + TSV files.

use std::io::Write as _;
use std::path::Path;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (e.g. "fig12a").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Row values, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render to a writer as aligned text.
    pub fn render(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "== {} — {}", self.id, self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(out, "{}", header.join("  "))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(out, "{}", cells.join("  "))?;
        }
        writeln!(out)
    }

    /// Print to stdout.
    pub fn print(&self) {
        let mut stdout = std::io::stdout().lock();
        self.render(&mut stdout).expect("stdout write failed");
    }

    /// Write `<dir>/<id>.tsv`.
    pub fn write_tsv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.tsv", self.id)))?;
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.columns.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Format seconds with 4 significant digits.
pub fn secs(t: f64) -> String {
    format!("{t:.4}")
}

/// Format an efficiency as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_render_and_tsv() {
        let mut t = Table::new("figX", "demo", &["cores", "time"]);
        t.push(vec!["96".into(), secs(1.25)]);
        t.push(vec!["192".into(), secs(0.7)]);
        let mut buf = Vec::new();
        t.render(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("figX"));
        assert!(s.contains("1.2500"));
        let dir = std::env::temp_dir().join("jsweep-table-test");
        t.write_tsv(&dir).unwrap();
        let tsv = std::fs::read_to_string(dir.join("figX.tsv")).unwrap();
        assert!(tsv.contains("cores\ttime"));
        assert!(tsv.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.896), "89.6%");
    }
}
