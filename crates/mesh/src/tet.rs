//! Unstructured tetrahedral meshes.
//!
//! Storage is flat and cache-friendly: vertex coordinates, a `4×ncells`
//! connectivity array, and precomputed per-face geometry (outward unit
//! normal, area, neighbour) in structure-of-arrays layout. Adjacency is
//! derived at construction time by hashing sorted face-vertex triples.

use crate::{BoundaryId, FaceInfo, Neighbor, SweepTopology};
use std::collections::HashMap;

/// Boundary id used for all exterior faces of a tetrahedral mesh.
pub const TET_BOUNDARY: BoundaryId = BoundaryId(0);

/// An unstructured conforming tetrahedral mesh.
#[derive(Debug, Clone)]
pub struct TetMesh {
    /// Vertex coordinates.
    vertices: Vec<[f64; 3]>,
    /// Four vertex indices per cell.
    tets: Vec<[u32; 4]>,
    /// Per-cell volume.
    volumes: Vec<f64>,
    /// Per-cell centroid.
    centroids: Vec<[f64; 3]>,
    /// `4*ncells` face neighbours: `i64::from(cell)` or `-1` for boundary.
    face_neighbor: Vec<i64>,
    /// `4*ncells` outward unit normals.
    face_normal: Vec<[f64; 3]>,
    /// `4*ncells` face areas.
    face_area: Vec<f64>,
    /// Topology generation stamp (see [`crate::next_generation`]).
    generation: u64,
}

/// Local faces of tet `(v0,v1,v2,v3)`: face `i` omits vertex `i`.
const FACE_VERTS: [[usize; 3]; 4] = [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]];

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn dot(a: [f64; 3], b: [f64; 3]) -> f64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

fn norm(a: [f64; 3]) -> f64 {
    dot(a, a).sqrt()
}

impl TetMesh {
    /// Build a mesh from raw vertices and tetrahedra.
    ///
    /// Vertex winding need not be consistent: volumes are taken as
    /// absolute values and face normals are oriented outward
    /// geometrically.
    ///
    /// # Panics
    /// Panics on degenerate (zero-volume) tets, out-of-range vertex
    /// indices, or faces shared by more than two tets (non-manifold
    /// input).
    pub fn new(vertices: Vec<[f64; 3]>, tets: Vec<[u32; 4]>) -> TetMesh {
        let n = tets.len();
        let mut volumes = Vec::with_capacity(n);
        let mut centroids = Vec::with_capacity(n);
        let mut face_normal = vec![[0.0; 3]; 4 * n];
        let mut face_area = vec![0.0; 4 * n];
        let mut face_neighbor = vec![-1i64; 4 * n];

        for (c, tet) in tets.iter().enumerate() {
            let p: Vec<[f64; 3]> = tet
                .iter()
                .map(|&v| {
                    assert!(
                        (v as usize) < vertices.len(),
                        "tet {c}: vertex {v} out of range"
                    );
                    vertices[v as usize]
                })
                .collect();
            let vol = dot(sub(p[1], p[0]), cross(sub(p[2], p[0]), sub(p[3], p[0]))).abs() / 6.0;
            assert!(vol > 1e-300, "tet {c} is degenerate (volume {vol})");
            volumes.push(vol);
            let centroid = [
                (p[0][0] + p[1][0] + p[2][0] + p[3][0]) / 4.0,
                (p[0][1] + p[1][1] + p[2][1] + p[3][1]) / 4.0,
                (p[0][2] + p[1][2] + p[2][2] + p[3][2]) / 4.0,
            ];
            centroids.push(centroid);
            for (f, fv) in FACE_VERTS.iter().enumerate() {
                let (a, b, cc) = (p[fv[0]], p[fv[1]], p[fv[2]]);
                let raw = cross(sub(b, a), sub(cc, a));
                let area = 0.5 * norm(raw);
                assert!(area > 0.0, "tet {c} face {f}: degenerate face");
                let mut normal = [
                    raw[0] / (2.0 * area),
                    raw[1] / (2.0 * area),
                    raw[2] / (2.0 * area),
                ];
                // Orient outward: away from the opposite vertex.
                let opp = p[f];
                let fc = [
                    (a[0] + b[0] + cc[0]) / 3.0,
                    (a[1] + b[1] + cc[1]) / 3.0,
                    (a[2] + b[2] + cc[2]) / 3.0,
                ];
                if dot(normal, sub(opp, fc)) > 0.0 {
                    normal = [-normal[0], -normal[1], -normal[2]];
                }
                face_normal[4 * c + f] = normal;
                face_area[4 * c + f] = area;
            }
        }

        // Face matching via sorted vertex triples.
        let mut seen: HashMap<[u32; 3], (u32, u8)> = HashMap::with_capacity(2 * n);
        for (c, tet) in tets.iter().enumerate() {
            for (f, fv) in FACE_VERTS.iter().enumerate() {
                let mut key = [tet[fv[0]], tet[fv[1]], tet[fv[2]]];
                key.sort_unstable();
                match seen.remove(&key) {
                    None => {
                        seen.insert(key, (c as u32, f as u8));
                    }
                    Some((oc, of)) => {
                        assert!(
                            face_neighbor[4 * oc as usize + of as usize] == -1,
                            "face {key:?} shared by more than two tets"
                        );
                        face_neighbor[4 * c + f] = oc as i64;
                        face_neighbor[4 * oc as usize + of as usize] = c as i64;
                    }
                }
            }
        }

        TetMesh {
            vertices,
            tets,
            volumes,
            centroids,
            face_neighbor,
            face_normal,
            face_area,
            generation: crate::next_generation(),
        }
    }

    /// Vertex coordinates.
    pub fn vertices(&self) -> &[[f64; 3]] {
        &self.vertices
    }

    /// Cell connectivity (four vertex ids per tet).
    pub fn tets(&self) -> &[[u32; 4]] {
        &self.tets
    }

    /// Total mesh volume.
    pub fn total_volume(&self) -> f64 {
        self.volumes.iter().sum()
    }

    /// Number of exterior (boundary) faces.
    pub fn num_boundary_faces(&self) -> usize {
        self.face_neighbor.iter().filter(|&&nb| nb < 0).count()
    }

    /// Bounding box `(min, max)` of the vertex set.
    pub fn bounding_box(&self) -> ([f64; 3], [f64; 3]) {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for v in &self.vertices {
            for i in 0..3 {
                lo[i] = lo[i].min(v[i]);
                hi[i] = hi[i].max(v[i]);
            }
        }
        (lo, hi)
    }
}

impl SweepTopology for TetMesh {
    fn num_cells(&self) -> usize {
        self.tets.len()
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn num_faces(&self, _c: usize) -> usize {
        4
    }

    #[inline]
    fn face(&self, c: usize, f: usize) -> FaceInfo {
        debug_assert!(f < 4);
        let idx = 4 * c + f;
        let nb = self.face_neighbor[idx];
        FaceInfo {
            neighbor: if nb < 0 {
                Neighbor::Boundary(TET_BOUNDARY)
            } else {
                Neighbor::Interior(nb as usize)
            },
            normal: self.face_normal[idx],
            area: self.face_area[idx],
        }
    }

    #[inline]
    fn cell_volume(&self, c: usize) -> f64 {
        self.volumes[c]
    }

    #[inline]
    fn cell_centroid(&self, c: usize) -> [f64; 3] {
        self.centroids[c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_face_closure_residual, validate_topology};

    /// Two tets sharing the face (1,2,3).
    fn two_tets() -> TetMesh {
        let vertices = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 1.0, 1.0],
        ];
        let tets = vec![[0, 1, 2, 3], [4, 1, 2, 3]];
        TetMesh::new(vertices, tets)
    }

    #[test]
    fn single_tet_geometry() {
        let m = TetMesh::new(
            vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ],
            vec![[0, 1, 2, 3]],
        );
        assert!((m.cell_volume(0) - 1.0 / 6.0).abs() < 1e-14);
        assert_eq!(m.num_boundary_faces(), 4);
        validate_topology(&m).unwrap();
        assert!(max_face_closure_residual(&m) < 1e-12);
    }

    #[test]
    fn shared_face_links_both_cells() {
        let m = two_tets();
        assert_eq!(m.neighbors(0), vec![1]);
        assert_eq!(m.neighbors(1), vec![0]);
        validate_topology(&m).unwrap();
    }

    #[test]
    fn normals_point_outward() {
        let m = two_tets();
        for c in 0..m.num_cells() {
            let cc = m.cell_centroid(c);
            for f in 0..4 {
                let face = m.face(c, f);
                // The vector from the cell centroid to any face must have
                // a positive component along the outward normal.
                // Approximate the face centroid via the neighbour/boundary
                // geometry: use cell centroid + normal projection test on
                // all four vertices of the face instead.
                let tet = m.tets()[c];
                let fv = super::FACE_VERTS[f];
                let a = m.vertices()[tet[fv[0]] as usize];
                let fc_to_a = super::sub(a, cc);
                assert!(
                    super::dot(face.normal, fc_to_a) > 0.0,
                    "cell {c} face {f}: normal points inward"
                );
            }
        }
    }

    #[test]
    fn winding_does_not_matter() {
        // Same tet with two different vertex orders must give the same
        // volume and outward normals.
        let verts = vec![
            [0.0, 0.0, 0.0],
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
        ];
        let a = TetMesh::new(verts.clone(), vec![[0, 1, 2, 3]]);
        let b = TetMesh::new(verts, vec![[0, 2, 1, 3]]);
        assert!((a.cell_volume(0) - b.cell_volume(0)).abs() < 1e-15);
        assert!(max_face_closure_residual(&b) < 1e-12);
    }

    #[test]
    fn upwind_downwind_split() {
        let m = two_tets();
        // Direction along +x: cell 0 is upwind of cell 1 or vice versa
        // depending on the shared-face normal; either way the two lists
        // are consistent.
        let dir = [1.0, 0.3, 0.2];
        let d0 = m.downwind_neighbors(0, dir);
        let u1 = m.upwind_neighbors(1, dir);
        if d0 == vec![1] {
            assert_eq!(u1, vec![0]);
        } else {
            assert_eq!(m.upwind_neighbors(0, dir), vec![1]);
            assert_eq!(m.downwind_neighbors(1, dir), vec![0]);
        }
    }

    #[test]
    fn bounding_box_covers_vertices() {
        let m = two_tets();
        let (lo, hi) = m.bounding_box();
        assert_eq!(lo, [0.0, 0.0, 0.0]);
        assert_eq!(hi, [1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn flat_tet_rejected() {
        TetMesh::new(
            vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
            ],
            vec![[0, 1, 2, 3]],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_vertex_index_rejected() {
        TetMesh::new(vec![[0.0; 3]; 3], vec![[0, 1, 2, 9]]);
    }
}
