#![deny(missing_docs)]

//! Sweep-DAG machinery: the data structures behind JSweep's Sn sweep
//! component (paper §V).
//!
//! A sweep in direction `Ω` orders cells from upwind to downwind; the
//! induced dependencies form a DAG whose vertices are `(cell, angle)`
//! pairs. JSweep never materialises that global DAG: each patch holds
//! the induced subgraph `G_{p,t}` for every task tag `t` (= angle), and
//! inter-patch edges are realised as streams at run time.
//!
//! * [`subgraph`] — construction of `G_{p,t}` from a mesh + patch set +
//!   direction (local in-degrees, internal CSR edges, remote edges);
//! * [`sweep_state`] — the reentrant Listing-1 scheduling core (counter
//!   array, ready priority queue, vertex clustering), shared by the
//!   threaded runtime, the discrete-event simulator and the baselines;
//! * [`priority`] — BFS / LDCP / SLBD vertex and patch priorities and
//!   the two-level `prior(p,a) = prior(a)·C + prior(p)` composition;
//! * [`coarse`] — the cached coarsened graph (§V-E) built from first-
//!   iteration clustering traces, with the Theorem-1 acyclicity check;
//! * [`dag`] / [`cycles`] — generic DAG utilities and cycle breaking
//!   for meshes whose geometry induces cyclic dependencies.

pub mod coarse;
pub mod cycles;
pub mod dag;
pub mod priority;
pub mod problem;
pub mod subgraph;
pub mod sweep_state;

pub use priority::{PriorityStrategy, TwoLevelPriority};
pub use problem::{ProblemOptions, SweepProblem};
pub use subgraph::{RemoteEdge, Subgraph};
pub use sweep_state::SweepState;
