//! Fault taxonomy and deterministic fault injection.
//!
//! The runtime's containment contract (the robustness counterpart of
//! the paper's §IV data-driven execution, which assumes every
//! patch-program computes to completion): a panicking `compute` —
//! or a rank that stops making progress — poisons the **epoch**, not
//! the process. Workers catch the panic at the claim site, report an
//! [`EpochFault`] through the normal report channel, and keep
//! serving; the master broadcasts an abort to its peers and
//! `run_epoch` returns `Err` instead of tearing the world down. A
//! faulted [`crate::Universe`] is then relaunched in place; coarse
//! plans survive because they key on the mesh generation, not the
//! universe (see `docs/replay.md`).
//!
//! [`FaultPlan`] is the deterministic injection harness driving
//! `tests/chaos.rs`. Its hooks are compiled in only under the
//! `fault-inject` cargo feature; in default builds every hook is an
//! inlined constant `None`/`false`, so production claim paths carry
//! no injection cost and a configured plan is inert.

use crate::program::ProgramId;
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;
use std::time::Duration;

#[cfg(feature = "fault-inject")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How an epoch came to fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A patch-program panicked inside `init`/`input`/`compute`.
    Panic,
    /// The epoch watchdog expired: the rank held active work but saw
    /// no worker progress for the configured deadline
    /// ([`crate::RuntimeConfig::watchdog`]).
    Stall,
    /// A rank thread died outright (an engine bug, not a program
    /// panic — program panics are contained as [`FaultKind::Panic`]).
    RankDeath,
    /// Synthesized by the fault-injection harness at the session
    /// tier (`fail epoch E of campaign C`); never produced by the
    /// runtime itself.
    Injected,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::RankDeath => "rank death",
            FaultKind::Injected => "injected",
        };
        f.write_str(s)
    }
}

/// A contained epoch failure: where it happened and why.
///
/// Returned by [`crate::Universe::run_epoch`] as the `Err` arm; the
/// universe that produced it refuses further epochs until
/// [`crate::Universe::relaunch`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EpochFault {
    /// Rank on which the fault originated.
    pub rank: usize,
    /// Worker index on that rank (the stalled worker's best-guess
    /// index for [`FaultKind::Stall`]).
    pub worker: usize,
    /// Offending patch-program, when one can be blamed (`None` for
    /// stalls and rank deaths).
    pub program: Option<ProgramId>,
    /// Panic payload rendered to a string, or a description of the
    /// stall/death.
    pub payload: String,
    /// Fault class.
    pub kind: FaultKind,
}

impl fmt::Display for EpochFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on rank {} worker {}",
            self.kind, self.rank, self.worker
        )?;
        if let Some(id) = self.program {
            write!(f, " (patch {} task {})", id.patch.0, id.task.0)?;
        }
        write!(f, ": {}", self.payload)
    }
}

impl EpochFault {
    /// Wire form for the master's abort broadcast (`TAG_ABORT`).
    pub(crate) fn pack(&self) -> Bytes {
        let mut w = BytesMut::with_capacity(32 + self.payload.len());
        w.put_u32_le(self.rank as u32);
        w.put_u32_le(self.worker as u32);
        w.put_u8(match self.kind {
            FaultKind::Panic => 0,
            FaultKind::Stall => 1,
            FaultKind::RankDeath => 2,
            FaultKind::Injected => 3,
        });
        match self.program {
            Some(id) => {
                w.put_u8(1);
                w.put_u32_le(id.patch.0);
                w.put_u32_le(id.task.0);
            }
            None => w.put_u8(0),
        }
        w.put_slice(self.payload.as_bytes());
        w.freeze()
    }

    /// Inverse of [`EpochFault::pack`].
    pub(crate) fn unpack(b: &[u8]) -> EpochFault {
        use jsweep_mesh::PatchId;
        let rank = u32::from_le_bytes(b[0..4].try_into().unwrap()) as usize;
        let worker = u32::from_le_bytes(b[4..8].try_into().unwrap()) as usize;
        let kind = match b[8] {
            0 => FaultKind::Panic,
            1 => FaultKind::Stall,
            2 => FaultKind::RankDeath,
            _ => FaultKind::Injected,
        };
        let (program, rest) = if b[9] == 1 {
            let patch = u32::from_le_bytes(b[10..14].try_into().unwrap());
            let task = u32::from_le_bytes(b[14..18].try_into().unwrap());
            (
                Some(ProgramId::new(
                    PatchId(patch),
                    crate::program::TaskTag(task),
                )),
                &b[18..],
            )
        } else {
            (None, &b[10..])
        };
        EpochFault {
            rank,
            worker,
            program,
            payload: String::from_utf8_lossy(rest).into_owned(),
            kind,
        }
    }
}

/// Render a `catch_unwind`/`join` panic payload as a string.
///
/// Panic payloads are `Box<dyn Any>`; in practice they are `&str`
/// (literal messages) or `String` (formatted messages). Anything else
/// renders as an opaque placeholder rather than being lost.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// One injected panic: the `nth` (1-based) compute call of patch
/// `patch` — counted across every task of that patch, process-wide —
/// panics. The counter lives in the shared plan, so the spec fires
/// exactly once even across universe relaunches: an injected panic is
/// a *transient* fault, which is what lets retry-policy tests recover.
#[cfg(feature = "fault-inject")]
#[derive(Debug)]
struct PanicSpec {
    patch: u32,
    nth: u64,
    hits: AtomicU64,
}

/// One injected stall: the `nth` (1-based) claim batch taken by
/// worker `worker` of rank `rank` sleeps for `duration` while holding
/// its claims, keeping the pool un-quiet so the epoch watchdog can
/// observe a stuck rank.
#[cfg(feature = "fault-inject")]
#[derive(Debug)]
struct StallSpec {
    rank: usize,
    worker: usize,
    nth: u64,
    duration: Duration,
    hits: AtomicU64,
}

/// One injected session-tier failure: the `epoch`-th (0-based) epoch
/// *attempt* of campaign `campaign` is reported as faulted without
/// running. One-shot.
#[cfg(feature = "fault-inject")]
#[derive(Debug)]
struct EpochFailSpec {
    campaign: u64,
    epoch: u64,
    fired: AtomicBool,
}

/// One injected rank death: the `nth` (1-based) epoch entered by rank
/// `rank` — counted process-wide against the shared plan, so the spec
/// fires exactly once even across universe relaunches — kills the
/// whole rank thread (master and all), simulating a crashed rank
/// process. Peers observe it through the transport (a raw EOF on a
/// socket fabric), not through any in-process side channel.
#[cfg(feature = "fault-inject")]
#[derive(Debug)]
struct KillSpec {
    rank: usize,
    nth: u64,
    hits: AtomicU64,
}

/// A deterministic, seedable fault-injection plan.
///
/// Built once (usually per test) and installed via
/// [`crate::RuntimeConfig::fault_plan`]; the runtime consults it at
/// three hook points — compute calls, claim batches, and session
/// epoch attempts. All triggers are counted events (the Nth compute
/// of a patch, the Nth claim of a worker, the Nth epoch attempt of a
/// campaign), so a deterministic workload faults at a deterministic
/// point regardless of thread scheduling.
///
/// With the `fault-inject` cargo feature disabled the plan still
/// constructs (so configs stay source-compatible) but every hook is a
/// compiled-out constant and the plan is inert.
#[derive(Debug, Default)]
pub struct FaultPlan {
    #[cfg(feature = "fault-inject")]
    panics: Vec<PanicSpec>,
    #[cfg(feature = "fault-inject")]
    stalls: Vec<StallSpec>,
    #[cfg(feature = "fault-inject")]
    epoch_fails: Vec<EpochFailSpec>,
    #[cfg(feature = "fault-inject")]
    kills: Vec<KillSpec>,
}

impl FaultPlan {
    /// Start building an empty plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::default(),
        }
    }

    /// A seeded one-panic plan for soak tests: splitmix64 over `seed`
    /// picks a target patch in `0..num_patches` and a trigger count in
    /// `1..=max_nth`. Same seed, same plan.
    pub fn seeded(seed: u64, num_patches: u32, max_nth: u64) -> FaultPlanBuilder {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let patch = (next() % u64::from(num_patches.max(1))) as u32;
        let nth = 1 + next() % max_nth.max(1);
        FaultPlan::builder().panic_on_compute(patch, nth)
    }

    /// Should this compute call panic? Counts the call against every
    /// matching spec; `true` exactly when a spec's counter lands on
    /// its `nth`.
    #[cfg(feature = "fault-inject")]
    pub fn should_panic(&self, id: ProgramId) -> bool {
        let mut fire = false;
        for spec in &self.panics {
            if spec.patch == id.patch.0 && spec.hits.fetch_add(1, Ordering::Relaxed) + 1 == spec.nth
            {
                fire = true;
            }
        }
        fire
    }

    /// Inert stand-in when injection is compiled out.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub fn should_panic(&self, _id: ProgramId) -> bool {
        false
    }

    /// How long (if at all) this claim batch should stall. Counts the
    /// batch against every matching spec.
    #[cfg(feature = "fault-inject")]
    pub fn stall_for(&self, rank: usize, worker: usize) -> Option<Duration> {
        let mut stall = None;
        for spec in &self.stalls {
            if spec.rank == rank
                && spec.worker == worker
                && spec.hits.fetch_add(1, Ordering::Relaxed) + 1 == spec.nth
            {
                stall = Some(spec.duration);
            }
        }
        stall
    }

    /// Inert stand-in when injection is compiled out.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub fn stall_for(&self, _rank: usize, _worker: usize) -> Option<Duration> {
        None
    }

    /// Should this session epoch attempt be failed without running?
    /// One-shot per spec.
    #[cfg(feature = "fault-inject")]
    pub fn take_epoch_fail(&self, campaign: u64, epoch_attempt: u64) -> bool {
        self.epoch_fails.iter().any(|spec| {
            spec.campaign == campaign
                && spec.epoch == epoch_attempt
                && !spec.fired.swap(true, Ordering::Relaxed)
        })
    }

    /// Inert stand-in when injection is compiled out.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub fn take_epoch_fail(&self, _campaign: u64, _epoch_attempt: u64) -> bool {
        false
    }

    /// Should this rank die on entering the current epoch? Counts the
    /// epoch entry against every matching spec; `true` exactly when a
    /// spec's counter lands on its `nth`.
    #[cfg(feature = "fault-inject")]
    pub fn should_kill_rank(&self, rank: usize) -> bool {
        let mut fire = false;
        for spec in &self.kills {
            if spec.rank == rank && spec.hits.fetch_add(1, Ordering::Relaxed) + 1 == spec.nth {
                fire = true;
            }
        }
        fire
    }

    /// Inert stand-in when injection is compiled out.
    #[cfg(not(feature = "fault-inject"))]
    #[inline(always)]
    pub fn should_kill_rank(&self, _rank: usize) -> bool {
        false
    }
}

/// Builder for [`FaultPlan`]. With the `fault-inject` feature
/// disabled every method is a no-op, so test helpers compile either
/// way.
#[derive(Debug, Default)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

#[cfg_attr(
    not(feature = "fault-inject"),
    allow(unused_variables, unused_mut, clippy::needless_pass_by_value)
)]
impl FaultPlanBuilder {
    /// Panic on the `nth` (1-based) compute call of any task of patch
    /// `patch`, once.
    pub fn panic_on_compute(mut self, patch: u32, nth: u64) -> FaultPlanBuilder {
        #[cfg(feature = "fault-inject")]
        self.plan.panics.push(PanicSpec {
            patch,
            nth,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Stall worker `worker` of rank `rank` for `duration` on its
    /// `nth` (1-based) claim batch, once.
    pub fn stall_worker(
        mut self,
        rank: usize,
        worker: usize,
        nth: u64,
        duration: Duration,
    ) -> FaultPlanBuilder {
        #[cfg(feature = "fault-inject")]
        self.plan.stalls.push(StallSpec {
            rank,
            worker,
            nth,
            duration,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Fail the `epoch`-th (0-based) epoch attempt of campaign
    /// `campaign` at the session tier, once, without running it.
    pub fn fail_epoch(mut self, campaign: u64, epoch: u64) -> FaultPlanBuilder {
        #[cfg(feature = "fault-inject")]
        self.plan.epoch_fails.push(EpochFailSpec {
            campaign,
            epoch,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Kill rank `rank` (panic the whole rank thread, master included)
    /// on the `nth` (1-based) epoch it enters, once across relaunches.
    pub fn kill_rank(mut self, rank: usize, nth: u64) -> FaultPlanBuilder {
        #[cfg(feature = "fault-inject")]
        self.plan.kills.push(KillSpec {
            rank,
            nth,
            hits: AtomicU64::new(0),
        });
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TaskTag;
    use jsweep_mesh::PatchId;

    #[test]
    fn fault_roundtrips_through_wire_form() {
        let f = EpochFault {
            rank: 3,
            worker: 1,
            program: Some(ProgramId::new(PatchId(7), TaskTag(2))),
            payload: "boom".to_string(),
            kind: FaultKind::Panic,
        };
        assert_eq!(EpochFault::unpack(&f.pack()), f);
        let g = EpochFault {
            rank: 0,
            worker: 4,
            program: None,
            payload: "no progress for 100ms".to_string(),
            kind: FaultKind::Stall,
        };
        assert_eq!(EpochFault::unpack(&g.pack()), g);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn panic_spec_fires_exactly_once_on_nth_compute() {
        let plan = FaultPlan::builder().panic_on_compute(5, 3).build();
        let id = ProgramId::new(PatchId(5), TaskTag(0));
        let other = ProgramId::new(PatchId(4), TaskTag(0));
        assert!(!plan.should_panic(other));
        assert!(!plan.should_panic(id)); // 1st
        assert!(!plan.should_panic(id)); // 2nd
        assert!(plan.should_panic(id)); // 3rd fires
        assert!(!plan.should_panic(id)); // spent
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn kill_spec_fires_exactly_once_on_nth_epoch_entry() {
        let plan = FaultPlan::builder().kill_rank(1, 2).build();
        assert!(!plan.should_kill_rank(0));
        assert!(!plan.should_kill_rank(1)); // 1st epoch entry
        assert!(plan.should_kill_rank(1)); // 2nd fires
        assert!(!plan.should_kill_rank(1)); // spent, incl. after relaunch
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn stall_and_epoch_specs_are_one_shot() {
        let plan = FaultPlan::builder()
            .stall_worker(1, 0, 1, Duration::from_millis(5))
            .fail_epoch(9, 2)
            .build();
        assert_eq!(plan.stall_for(0, 0), None);
        assert_eq!(plan.stall_for(1, 0), Some(Duration::from_millis(5)));
        assert_eq!(plan.stall_for(1, 0), None);
        assert!(!plan.take_epoch_fail(9, 1));
        assert!(plan.take_epoch_fail(9, 2));
        assert!(!plan.take_epoch_fail(9, 2));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = format!("{:?}", FaultPlan::seeded(42, 8, 10).build());
        let b = format!("{:?}", FaultPlan::seeded(42, 8, 10).build());
        assert_eq!(a, b);
    }
}
