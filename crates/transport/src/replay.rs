//! The compiled coarse-graph replay plan (paper §V-E).
//!
//! The first fine-grained (DAG-driven) sweep iteration records, per
//! `(patch, angle)` task, the vertex clusters its `compute()` calls
//! formed ([`ClusterTrace`]). Because the mesh — and hence every sweep
//! DAG — is constant across source iterations, those clusters can be
//! cached as a **coarsened task graph** and replayed verbatim from the
//! second iteration on: each coarse vertex executes its recorded vertex
//! list in order, and each outgoing coarse edge becomes exactly one
//! stream, so iterations ≥ 2 pay no per-vertex in-degree bookkeeping
//! and no priority recomputation.
//!
//! [`build_plan`] runs [`jsweep_graph::coarse::build_coarse`] per angle
//! (which enforces the Theorem-1 acyclicity guarantee on the *real*
//! solver traces) and then resolves every coarse-edge item `P(ce)` down
//! to the wire format the replay program emits: the destination cell,
//! the source cell, and the slot in the per-task face-flux staging
//! buffer the kernel writes while executing the source cluster.

use jsweep_graph::coarse::{build_coarse, ClusterTrace, CoarsenedTask};
use jsweep_graph::SweepProblem;
use jsweep_mesh::PatchId;
use parking_lot::Mutex;
use std::sync::Arc;

/// Per-task trace bins filled during the recording iteration, indexed
/// by [`SweepProblem::tid`] (`angle * num_patches + patch`). A slot is
/// `None` until its `(patch, angle)` program completes and deposits.
pub type TraceBins = Vec<Mutex<Option<ClusterTrace>>>;

/// Allocate empty trace bins for every `(patch, angle)` task.
pub fn new_trace_bins(num_tasks: usize) -> TraceBins {
    (0..num_tasks).map(|_| Mutex::new(None)).collect()
}

/// One item of a replayed coarse edge: which face-flux value travels,
/// and where it lands.
#[derive(Debug, Clone, Copy)]
pub struct ReplayItem {
    /// Consumer cell (global id) on the destination patch.
    pub dst_cell: u32,
    /// Producer cell (global id) on the source patch.
    pub src_cell: u32,
    /// Index of the fine remote edge in the source subgraph's remote
    /// CSR — the slot of the staged outgoing face-flux values.
    pub rem_idx: u32,
}

/// One outgoing coarse edge of a coarse vertex: a single stream to
/// `(patch, same angle)` carrying the combined items `P(ce)`.
#[derive(Debug, Clone)]
pub struct ReplayEmit {
    /// Patch owning the target coarse vertex.
    pub patch: PatchId,
    /// Target cluster index within that patch's coarsened task.
    pub cluster: u32,
    /// The coarse edge's items, in deterministic (source vertex,
    /// destination cell) order.
    pub items: Vec<ReplayItem>,
}

/// The replayable form of one `(patch, angle)` task: the coarsened
/// task graph plus its pre-resolved stream emissions.
#[derive(Debug, Clone)]
pub struct ReplayTask {
    /// The coarsened task (clusters, coarse in-degrees, internal coarse
    /// edges) driving [`jsweep_graph::coarse::CoarseSweepState`].
    pub coarse: CoarsenedTask,
    /// `emits[cv]`: the streams emitted when coarse vertex `cv`
    /// finishes — one per outgoing remote coarse edge.
    pub emits: Vec<Vec<ReplayEmit>>,
}

/// The full coarse-graph replay plan of a sweep problem, built once
/// after the recording iteration and shared by all later iterations.
#[derive(Debug)]
pub struct CoarsePlan {
    /// `tasks[angle][patch]`.
    pub tasks: Vec<Vec<Arc<ReplayTask>>>,
    /// Host seconds spent coarsening (the paper reports this build cost
    /// staying below one DAG-driven iteration).
    pub build_seconds: f64,
}

impl CoarsePlan {
    /// Total coarse vertices across all tasks.
    pub fn num_coarse_vertices(&self) -> usize {
        self.tasks
            .iter()
            .flat_map(|per_patch| per_patch.iter())
            .map(|t| t.coarse.num_clusters())
            .sum()
    }
}

/// Drain the recorded traces out of `bins` into `traces[angle][patch]`
/// order (the layout [`build_plan`] consumes). Tasks that never
/// deposited (empty patches) yield an empty trace.
pub fn collect_traces(problem: &SweepProblem, bins: &TraceBins) -> Vec<Vec<ClusterTrace>> {
    (0..problem.num_angles)
        .map(|a| {
            (0..problem.num_patches())
                .map(|p| bins[problem.tid(p, a)].lock().take().unwrap_or_default())
                .collect()
        })
        .collect()
}

/// Compile the coarse-graph replay plan from the recording iteration's
/// traces (`traces[angle][patch]`).
///
/// Runs the Theorem-1 topological check per angle (via
/// [`build_coarse`], which panics on a cyclic coarse graph — a
/// scheduler bug) and resolves each coarse-edge item to its staging
/// slot in the source subgraph's remote-edge CSR.
pub fn build_plan(problem: &SweepProblem, traces: &[Vec<ClusterTrace>]) -> CoarsePlan {
    assert_eq!(traces.len(), problem.num_angles);
    let t0 = std::time::Instant::now();
    let tasks: Vec<Vec<Arc<ReplayTask>>> = (0..problem.num_angles)
        .map(|a| {
            let subs = &problem.subs[a];
            build_coarse(subs, &traces[a])
                .into_iter()
                .enumerate()
                .map(|(p, coarse)| {
                    let sub = &subs[p];
                    let emits: Vec<Vec<ReplayEmit>> = coarse
                        .remote
                        .iter()
                        .map(|edges| {
                            edges
                                .iter()
                                .map(|e| ReplayEmit {
                                    patch: e.patch,
                                    cluster: e.cluster,
                                    items: e
                                        .items
                                        .iter()
                                        .map(|&(v, cell)| {
                                            let local = sub
                                                .remote_succ(v)
                                                .iter()
                                                .position(|re| re.cell == cell)
                                                .expect("coarse-edge item without fine edge");
                                            ReplayItem {
                                                dst_cell: cell,
                                                src_cell: sub.cells[v as usize],
                                                rem_idx: sub.rem_off[v as usize] + local as u32,
                                            }
                                        })
                                        .collect(),
                                })
                                .collect()
                        })
                        .collect();
                    Arc::new(ReplayTask { coarse, emits })
                })
                .collect()
        })
        .collect();
    CoarsePlan {
        tasks,
        build_seconds: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bins_collect_to_default_traces() {
        let m = jsweep_mesh::StructuredMesh::unit(2, 2, 2);
        let ps = jsweep_mesh::partition::decompose_structured(&m, (2, 2, 2), 1);
        let q = jsweep_quadrature::QuadratureSet::sn(2);
        let prob = SweepProblem::build(
            &m,
            ps,
            &q,
            &jsweep_graph::problem::ProblemOptions::default(),
        );
        let bins = new_trace_bins(prob.num_tasks());
        let traces = collect_traces(&prob, &bins);
        assert_eq!(traces.len(), prob.num_angles);
        assert!(traces
            .iter()
            .all(|per_patch| per_patch.iter().all(|t| t.clusters.is_empty())));
    }
}
