//! The reentrant scheduling core of a sweep patch-program (Listing 1).
//!
//! [`SweepState`] is the "local context" of the paper's
//! `SweepPatchProgram`: the per-vertex counter array, the ready priority
//! queue `Q`, and the computed-vertex tally. It implements the three
//! state-changing primitives —
//!
//! * `init` (construction): counters ← upwind degree, sources → `Q`;
//! * `input` ([`SweepState::receive`]): a remote upwind datum arrived,
//!   decrement, enqueue when zero;
//! * `compute` ([`SweepState::pop_cluster`]): dequeue up to *grain*
//!   ready vertices (vertex clustering, §V-C), decrementing internal
//!   downwind counters inline — so a chain that becomes ready mid-pop
//!   joins the same cluster — and reporting remote downwind edges to
//!   the caller for stream aggregation.
//!
//! The struct is physics-free: the threaded runtime, the discrete-event
//! simulator and the BSP baseline all drive the *same* code, which is
//! what makes their schedules comparable.

use crate::subgraph::{RemoteEdge, Subgraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Scheduling state of one `(patch, angle)` sweep task.
#[derive(Debug, Clone)]
pub struct SweepState {
    /// Unfinished-upwind counters, one per local vertex.
    counts: Vec<u32>,
    /// Ready vertices, ordered by `(priority, lowest id)` — a max-heap
    /// on priority with deterministic tie-breaking.
    ready: BinaryHeap<(i64, Reverse<u32>)>,
    /// Vertex priorities (fixed for the lifetime of the state; shared
    /// across states and iterations — the DAG is constant, §V-E).
    prio: Arc<Vec<i64>>,
    /// Number of vertices computed so far.
    computed: u32,
}

impl SweepState {
    /// `init()`: counters from the subgraph's in-degrees; source
    /// vertices enter the ready queue immediately.
    pub fn new(sub: &Subgraph, prio: Arc<Vec<i64>>) -> SweepState {
        assert_eq!(prio.len(), sub.num_vertices(), "priority length mismatch");
        let counts = sub.in_degree.clone();
        let mut ready = BinaryHeap::new();
        for (v, &c) in counts.iter().enumerate() {
            if c == 0 {
                ready.push((prio[v], Reverse(v as u32)));
            }
        }
        SweepState {
            counts,
            ready,
            prio,
            computed: 0,
        }
    }

    /// Convenience constructor copying a priority slice (tests, small
    /// problems).
    pub fn with_priorities(sub: &Subgraph, prio: &[i64]) -> SweepState {
        SweepState::new(sub, Arc::new(prio.to_vec()))
    }

    /// Re-arm this state for another sweep of the same subgraph,
    /// reusing its allocations in place: counters are re-copied from
    /// the in-degrees, the ready queue is rebuilt with the shared
    /// priorities, the computed tally restarts. The persistent-universe
    /// counterpart of [`SweepState::new`] — no reallocation.
    pub fn reset(&mut self, sub: &Subgraph) {
        assert_eq!(
            self.counts.len(),
            sub.num_vertices(),
            "reset against a different subgraph"
        );
        self.counts.copy_from_slice(&sub.in_degree);
        self.ready.clear();
        for (v, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                self.ready.push((self.prio[v], Reverse(v as u32)));
            }
        }
        self.computed = 0;
    }

    /// `input()`: one upwind datum for local vertex `v` arrived from a
    /// remote patch.
    pub fn receive(&mut self, v: u32) {
        let c = &mut self.counts[v as usize];
        debug_assert!(*c > 0, "vertex {v} received more data than its in-degree");
        *c -= 1;
        if *c == 0 {
            self.ready.push((self.prio[v as usize], Reverse(v)));
        }
    }

    /// `vote_to_halt()` is true when no ready work remains.
    pub fn has_ready(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Vertices not yet computed.
    pub fn remaining(&self) -> u64 {
        self.counts.len() as u64 - self.computed as u64
    }

    /// True when every local vertex has been computed.
    pub fn is_complete(&self) -> bool {
        self.computed as usize == self.counts.len()
    }

    /// Number of vertices computed so far.
    pub fn computed(&self) -> u32 {
        self.computed
    }

    /// `compute()`: pop up to `grain` ready vertices (grain = the vertex
    /// clustering grain `N`), propagate internal readiness inline, and
    /// report each remote downwind edge via `on_remote(src_vertex, edge)`.
    ///
    /// Returns the popped cluster in execution (topological) order.
    pub fn pop_cluster(
        &mut self,
        sub: &Subgraph,
        grain: usize,
        mut on_remote: impl FnMut(u32, RemoteEdge),
    ) -> Vec<u32> {
        assert!(grain > 0, "clustering grain must be positive");
        let mut cluster = Vec::with_capacity(grain.min(16));
        while cluster.len() < grain {
            let Some((_, Reverse(v))) = self.ready.pop() else {
                break;
            };
            cluster.push(v);
            self.computed += 1;
            for &w in sub.internal_succ(v) {
                let c = &mut self.counts[w as usize];
                debug_assert!(*c > 0, "internal edge to satisfied vertex {w}");
                *c -= 1;
                if *c == 0 {
                    self.ready.push((self.prio[w as usize], Reverse(w)));
                }
            }
            for &re in sub.remote_succ(v) {
                on_remote(v, re);
            }
        }
        cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::{PatchSet, StructuredMesh, SweepTopology};
    use jsweep_quadrature::AngleId;
    use std::collections::HashSet;

    fn line_subgraph(n: usize) -> Subgraph {
        let m = StructuredMesh::unit(n, 1, 1);
        let ps = PatchSet::single(m.num_cells());
        Subgraph::build(
            &m,
            &ps,
            jsweep_mesh::PatchId(0),
            AngleId(0),
            [1.0, 0.0, 0.0],
            &HashSet::new(),
        )
    }

    #[test]
    fn chain_completes_in_one_cluster_with_large_grain() {
        let sub = line_subgraph(8);
        let mut st = SweepState::with_priorities(&sub, &[0; 8]);
        let cluster = st.pop_cluster(&sub, 1000, |_, _| panic!("no remote edges"));
        assert_eq!(cluster.len(), 8);
        assert!(st.is_complete());
        // Chain order is forced by dependencies.
        assert_eq!(cluster, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn grain_one_needs_n_calls() {
        let sub = line_subgraph(5);
        let mut st = SweepState::with_priorities(&sub, &[0; 5]);
        let mut calls = 0;
        while !st.is_complete() {
            let c = st.pop_cluster(&sub, 1, |_, _| {});
            assert_eq!(c.len(), 1);
            calls += 1;
        }
        assert_eq!(calls, 5);
    }

    #[test]
    fn remaining_counts_down() {
        let sub = line_subgraph(4);
        let mut st = SweepState::with_priorities(&sub, &[0; 4]);
        assert_eq!(st.remaining(), 4);
        st.pop_cluster(&sub, 2, |_, _| {});
        assert_eq!(st.remaining(), 2);
        st.pop_cluster(&sub, 2, |_, _| {});
        assert_eq!(st.remaining(), 0);
    }

    #[test]
    fn receive_unblocks_vertex() {
        // Two patches of a 2-cell line: patch 1's cell waits for remote
        // data.
        let m = StructuredMesh::unit(2, 1, 1);
        let ps = PatchSet::from_assignment(vec![0, 1], 2);
        let sub1 = Subgraph::build(
            &m,
            &ps,
            jsweep_mesh::PatchId(1),
            AngleId(0),
            [1.0, 0.0, 0.0],
            &HashSet::new(),
        );
        let mut st = SweepState::with_priorities(&sub1, &[0]);
        assert!(!st.has_ready());
        st.receive(0);
        assert!(st.has_ready());
        let c = st.pop_cluster(&sub1, 10, |_, _| {});
        assert_eq!(c, vec![0]);
        assert!(st.is_complete());
    }

    #[test]
    fn priority_orders_ready_queue() {
        // 2x1x1 split into two independent cells (direction along y means
        // no x-dependency).
        let m = StructuredMesh::unit(2, 1, 1);
        let ps = PatchSet::single(2);
        let sub = Subgraph::build(
            &m,
            &ps,
            jsweep_mesh::PatchId(0),
            AngleId(0),
            [0.0, 1.0, 0.0],
            &HashSet::new(),
        );
        // Both cells are sources; give cell 1 higher priority.
        let mut st = SweepState::with_priorities(&sub, &[5, 10]);
        let c = st.pop_cluster(&sub, 1, |_, _| {});
        assert_eq!(c, vec![1]);
    }

    #[test]
    fn tie_break_is_lowest_vertex_id() {
        let m = StructuredMesh::unit(3, 1, 1);
        let ps = PatchSet::single(3);
        let sub = Subgraph::build(
            &m,
            &ps,
            jsweep_mesh::PatchId(0),
            AngleId(0),
            [0.0, 0.0, 1.0],
            &HashSet::new(),
        );
        let mut st = SweepState::with_priorities(&sub, &[7, 7, 7]);
        let c = st.pop_cluster(&sub, 3, |_, _| {});
        assert_eq!(c, vec![0, 1, 2]);
    }

    #[test]
    fn remote_edges_reported_with_source() {
        let m = StructuredMesh::unit(2, 1, 1);
        let ps = PatchSet::from_assignment(vec![0, 1], 2);
        let sub0 = Subgraph::build(
            &m,
            &ps,
            jsweep_mesh::PatchId(0),
            AngleId(0),
            [1.0, 0.0, 0.0],
            &HashSet::new(),
        );
        let mut st = SweepState::with_priorities(&sub0, &[0]);
        let mut remotes = Vec::new();
        st.pop_cluster(&sub0, 10, |v, re| remotes.push((v, re)));
        assert_eq!(remotes.len(), 1);
        assert_eq!(remotes[0].0, 0);
        assert_eq!(remotes[0].1.patch, jsweep_mesh::PatchId(1));
        assert_eq!(remotes[0].1.cell, 1);
    }

    #[test]
    fn full_mesh_all_angles_complete_serially() {
        // Single patch, any direction: repeated pops must visit every
        // vertex exactly once.
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = PatchSet::single(m.num_cells());
        let q = jsweep_quadrature::QuadratureSet::sn(2);
        for (a, o) in q.iter() {
            let sub = Subgraph::build(&m, &ps, jsweep_mesh::PatchId(0), a, o.dir, &HashSet::new());
            let prio = crate::priority::vertex_priorities(&sub, crate::PriorityStrategy::Slbd);
            let mut st = SweepState::with_priorities(&sub, &prio);
            let mut seen = vec![false; m.num_cells()];
            while !st.is_complete() {
                let cluster = st.pop_cluster(&sub, 7, |_, _| {});
                assert!(!cluster.is_empty(), "stalled with work remaining");
                for v in cluster {
                    assert!(!seen[v as usize], "vertex {v} computed twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    #[should_panic(expected = "grain must be positive")]
    fn zero_grain_rejected() {
        let sub = line_subgraph(2);
        let mut st = SweepState::with_priorities(&sub, &[0, 0]);
        st.pop_cluster(&sub, 0, |_, _| {});
    }
}
