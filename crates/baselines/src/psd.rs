//! PSD-b-style dedicated data-driven sweep (Colomer et al. 2013).
//!
//! PSD-b ("parallel sweep, data-driven, buffered") is a hand-written
//! MPI sweep for unstructured meshes: one subdomain per process, no
//! patch framework, no master thread — the process alternates between
//! computing ready cells and servicing messages itself. Table I
//! compares its parallel efficiency against JSweep's; the paper notes
//! JSweep scales somewhat worse because it pays for framework
//! generality.
//!
//! We model PSD-b as the DES with one patch per rank, a single worker
//! per rank that *is* the master (no reserved core: `cores == ranks`),
//! and zero routing overhead.

use jsweep_des::{simulate, DesResult, MachineModel, ProblemOptions, SimOptions, SweepProblem};
use jsweep_graph::PriorityStrategy;
use jsweep_mesh::{partition, SweepTopology};
use jsweep_quadrature::QuadratureSet;

/// Simulate one PSD-b sweep iteration on `ranks` processes.
///
/// The mesh is RCB-partitioned into exactly one subdomain per rank.
/// Returns the result plus the core count to charge (== `ranks`).
pub fn simulate_psd<T: SweepTopology + ?Sized>(
    mesh: &T,
    quadrature: &QuadratureSet,
    ranks: usize,
    machine_template: &MachineModel,
    grain: usize,
) -> (DesResult, usize) {
    let mut ps = partition::rcb(mesh, ranks);
    ps.distribute((0..ranks as u32).collect(), ranks);
    let prob = SweepProblem::build(
        mesh,
        ps,
        quadrature,
        &ProblemOptions {
            vertex_strategy: PriorityStrategy::Slbd,
            patch_strategy: PriorityStrategy::Slbd,
            share_octant_dags: false,
            check_cycles: false,
        },
    );
    let mut machine = machine_template.clone();
    machine.ranks = ranks;
    machine.workers_per_rank = 1;
    // No separate master: routing costs nothing extra on top of the
    // worker's own compute (folded into t_sched).
    machine.t_route = 0.0;
    let r = simulate(
        &prob,
        &machine,
        &SimOptions {
            grain,
            record_traces: false,
        },
    );
    (r, ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::tetgen;

    #[test]
    fn psd_completes_on_ball() {
        let m = tetgen::ball(4, 1.0);
        let q = QuadratureSet::sn(2);
        let (r, cores) = simulate_psd(&m, &q, 4, &MachineModel::cluster(4, 1), 64);
        assert_eq!(cores, 4);
        assert_eq!(r.vertices, (m.num_cells() * 8) as u64);
    }

    #[test]
    fn psd_strong_scales() {
        let m = tetgen::ball(6, 1.0);
        let q = QuadratureSet::sn(2);
        let (one, _) = simulate_psd(&m, &q, 1, &MachineModel::cluster(1, 1), 64);
        let (eight, _) = simulate_psd(&m, &q, 8, &MachineModel::cluster(1, 1), 64);
        assert!(eight.time < one.time);
        let speedup = one.time / eight.time;
        assert!(speedup > 2.0, "speedup {speedup} too low for 8 ranks");
    }
}
