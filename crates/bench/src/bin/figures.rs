//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [--scale smoke|full] [--out DIR] [ids...]
//! ```
//!
//! With no ids, every experiment runs. Results print to stdout and are
//! written as TSVs under `--out` (default `bench_results/`).

use jsweep_bench::{figs, Scale, Table};
use std::path::PathBuf;

fn main() {
    let mut scale = Scale::Full;
    let mut out_dir = PathBuf::from("bench_results");
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = match v.as_str() {
                    "smoke" => Scale::Smoke,
                    "full" => Scale::Full,
                    other => panic!("unknown scale {other:?} (use smoke|full)"),
                };
            }
            "--out" => out_dir = PathBuf::from(args.next().expect("--out needs a value")),
            "--help" | "-h" => {
                println!("usage: figures [--scale smoke|full] [--out DIR] [ids...]");
                println!("ids: fig9a fig9b fig12a fig12b fig13a fig13b fig14a fig14b");
                println!("     fig15 fig16 fig17a fig17b table1 cg_ablation cg_replay all");
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = vec![
            "fig9a",
            "fig9b",
            "fig12a",
            "fig12b",
            "fig13a",
            "fig13b",
            "fig14a",
            "fig14b",
            "fig15",
            "fig16",
            "fig17a",
            "fig17b",
            "table1",
            "cg_ablation",
            "cg_replay",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    for id in &ids {
        let start = std::time::Instant::now();
        let tables: Vec<Table> = match id.as_str() {
            "fig9a" => vec![figs::fig09a(scale)],
            "fig9b" => vec![figs::fig09b(scale)],
            "fig12a" => vec![figs::fig12(scale, false)],
            "fig12b" => vec![figs::fig12(scale, true)],
            "fig13a" => figs::fig13a(scale),
            "fig13b" => vec![figs::fig13b(scale)],
            "fig14a" => vec![figs::fig14(scale, false)],
            "fig14b" => vec![figs::fig14(scale, true)],
            "fig15" => vec![figs::fig15(scale)],
            "fig16" => vec![figs::fig16(scale)],
            "fig17a" => vec![figs::fig17(scale, false)],
            "fig17b" => vec![figs::fig17(scale, true)],
            "table1" => vec![figs::table1(scale)],
            "cg_ablation" => vec![figs::cg_ablation(scale)],
            "cg_replay" => vec![figs::cg_replay(scale)],
            other => {
                eprintln!("unknown experiment id {other:?}; see --help");
                std::process::exit(2);
            }
        };
        for t in &tables {
            t.print();
            t.write_tsv(&out_dir).expect("write TSV");
        }
        eprintln!(
            "[{id}] done in {:.1}s (host time)",
            start.elapsed().as_secs_f64()
        );
    }
}
