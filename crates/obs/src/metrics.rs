//! The metrics registry: counters, gauges and fixed-bucket histograms
//! with Prometheus text exposition.
//!
//! Metric handles are cheap `Arc`-backed cells: look one up (or create
//! it) once through the [`MetricsRegistry`], then update it with plain
//! atomic operations from any thread. A metric name may carry a label
//! set in Prometheus syntax (`jsweep_epoch_wall_seconds{rank="0"}`);
//! the renderer groups series of one base name under a single
//! `# HELP`/`# TYPE` header and merges histogram `le` labels into the
//! series' own labels.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing `u64` counter.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `by` to the counter.
    pub fn add(&self, by: u64) {
        self.cell.fetch_add(by, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending; an implicit
    /// `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` cells,
    /// NON-cumulative; the renderer accumulates).
    buckets: Vec<AtomicU64>,
    /// Sum of observations, as `f64` bits (CAS loop on update).
    sum_bits: AtomicU64,
}

/// Fixed-bucket histogram of `f64` observations.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let i = self
            .core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.core.bounds.len());
        self.core.buckets[i].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

/// Suggested bucket bounds for wall-time observations (seconds):
/// 100 µs to 30 s, roughly 1-2-5 per decade.
pub const SECONDS_BUCKETS: &[f64] = &[
    1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
];

/// Suggested bucket bounds for payload sizes (bytes): 64 B to 16 MiB
/// in powers of four.
pub const BYTES_BUCKETS: &[f64] = &[
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0, 16777216.0,
];

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Named registry of every metric one [`crate::Telemetry`] owns.
///
/// Lookup-or-create takes a lock; updates through the returned handles
/// are lock-free. Re-requesting a name returns the same underlying
/// cell. Requesting an existing name as a *different* metric type is a
/// configuration bug and panics.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
    /// Optional help text per base (label-stripped) name.
    help: Mutex<BTreeMap<String, &'static str>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Attach help text to a base metric name (shown as `# HELP`).
    /// Idempotent; the first registration wins.
    pub fn describe(&self, base: &str, help: &'static str) {
        self.help
            .lock()
            .unwrap()
            .entry(base.to_string())
            .or_insert(help);
    }

    /// Get or create a counter series.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.lock().unwrap();
        match g.entry(name.to_string()).or_insert_with(|| {
            Metric::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Get or create a gauge series.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.lock().unwrap();
        match g.entry(name.to_string()).or_insert_with(|| {
            Metric::Gauge(Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
        }) {
            Metric::Gauge(v) => v.clone(),
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Get or create a histogram series with the given finite bucket
    /// bounds (ascending; a `+Inf` bucket is implicit). Bounds are
    /// fixed at first creation; later calls may pass the same bounds
    /// (or anything — they are ignored once the series exists).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut g = self.inner.lock().unwrap();
        match g.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                }),
            })
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Render every metric in Prometheus text exposition format
    /// (series sorted by name; one `# HELP`/`# TYPE` header per base
    /// name; histograms as cumulative `_bucket`/`_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let g = self.inner.lock().unwrap();
        let help = self.help.lock().unwrap();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in g.iter() {
            let (base, labels) = split_name(name);
            if base != last_base {
                let text = help.get(base).copied().unwrap_or("(no help recorded)");
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {base} {text}\n# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", series(base, labels, None), c.get()));
                }
                Metric::Gauge(v) => {
                    out.push_str(&format!("{} {}\n", series(base, labels, None), v.get()));
                }
                Metric::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, bound) in h.core.bounds.iter().enumerate() {
                        cum += h.core.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{} {cum}\n",
                            series(&format!("{base}_bucket"), labels, Some(&fmt_le(*bound)))
                        ));
                    }
                    cum += h.core.buckets[h.core.bounds.len()].load(Ordering::Relaxed);
                    out.push_str(&format!(
                        "{} {cum}\n",
                        series(&format!("{base}_bucket"), labels, Some("+Inf"))
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        series(&format!("{base}_sum"), labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{} {cum}\n",
                        series(&format!("{base}_count"), labels, None)
                    ));
                }
            }
        }
        out
    }
}

/// Split `name{labels}` into `(base, labels-without-braces)`.
fn split_name(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Assemble one series line's name part, merging an optional `le`
/// label into the series' own labels.
fn series(base: &str, labels: &str, le: Option<&str>) -> String {
    match (labels.is_empty(), le) {
        (true, None) => base.to_string(),
        (true, Some(le)) => format!("{base}{{le=\"{le}\"}}"),
        (false, None) => format!("{base}{{{labels}}}"),
        (false, Some(le)) => format!("{base}{{{labels},le=\"{le}\"}}"),
    }
}

/// Format a bucket bound the way Prometheus clients expect (shortest
/// round-trip `f64` formatting).
fn fmt_le(bound: f64) -> String {
    format!("{bound}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("jsweep_epochs_total");
        let b = reg.counter("jsweep_epochs_total");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("jsweep_plan_cache_bytes");
        g.set(12.5);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("wait", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5.55).abs() < 1e-12);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE wait histogram"), "{text}");
        assert!(text.contains("wait_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("wait_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("wait_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("wait_count 3"), "{text}");
    }

    #[test]
    fn labeled_series_share_one_header() {
        let reg = MetricsRegistry::new();
        reg.describe("epochs", "epochs run per rank");
        reg.counter("epochs{rank=\"0\"}").add(2);
        reg.counter("epochs{rank=\"1\"}").add(3);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE epochs counter").count(), 1, "{text}");
        assert!(text.contains("# HELP epochs epochs run per rank"));
        assert!(text.contains("epochs{rank=\"0\"} 2"));
        assert!(text.contains("epochs{rank=\"1\"} 3"));
    }

    #[test]
    fn labeled_histogram_merges_le_into_labels() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("w{rank=\"2\"}", &[1.0]);
        h.observe(0.5);
        let text = reg.render_prometheus();
        assert!(text.contains("w_bucket{rank=\"2\",le=\"1\"} 1"), "{text}");
        assert!(
            text.contains("w_bucket{rank=\"2\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("w_sum{rank=\"2\"} 0.5"), "{text}");
        assert!(text.contains("w_count{rank=\"2\"} 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_mismatch_is_a_configuration_panic() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("x");
        let _ = reg.counter("x");
    }
}
