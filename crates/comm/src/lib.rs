//! Simulated MPI substrate.
//!
//! JSweep's runtime was built on MPI + threads on Tianhe-II. This crate
//! reproduces the slice of MPI semantics the runtime consumes — ranks
//! with asynchronous, per-pair-ordered point-to-point messages, plus a
//! few collectives and distributed termination detection — with ranks
//! as OS threads and crossbeam channels as the fabric (see DESIGN.md §2
//! for why this substitution preserves the behaviour under study).
//!
//! * [`Universe::run`] spawns `n` rank threads and hands each a
//!   [`Comm`] endpoint;
//! * [`Comm`] provides tagged `send` / `try_recv` / `recv_match` and
//!   collectives (`barrier`, `allreduce_*`);
//! * [`termination`] implements both termination detectors the paper
//!   supports (§IV-C): the general Dijkstra–Safra token protocol and
//!   the workload-counting shortcut for algorithms with known totals;
//! * [`pack`] is the byte-level stream codec (the pack/unpack cost that
//!   Fig. 16 profiles).

#![deny(missing_docs)]

pub mod pack;
pub mod termination;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;

/// Tags at or above this value are reserved for the substrate
/// (collectives, termination). User code must stay below.
pub const RESERVED_TAG_BASE: u32 = u32::MAX - 16;
/// Collective phase tag (barrier / reductions).
pub const TAG_COLLECTIVE: u32 = RESERVED_TAG_BASE;
/// Dijkstra–Safra token.
pub const TAG_TOKEN: u32 = RESERVED_TAG_BASE + 1;
/// Global termination announcement.
pub const TAG_TERMINATE: u32 = RESERVED_TAG_BASE + 2;
/// "This rank finished its known workload" report (counting detector).
pub const TAG_LOCAL_DONE: u32 = RESERVED_TAG_BASE + 3;

/// A received message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User or reserved tag.
    pub tag: u32,
    /// Opaque payload (see [`pack`]).
    pub payload: Bytes,
}

/// One rank's endpoint of the simulated communicator.
pub struct Comm {
    rank: usize,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Messages received while waiting for a specific tag.
    stash: VecDeque<Message>,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Asynchronous tagged send. Sending to self is allowed (the message
    /// is delivered through the same queue as remote ones).
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) {
        self.senders[to]
            .send(Message {
                src: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    /// Non-blocking receive of the next message of *any* tag, checking
    /// the stash first.
    pub fn try_recv(&mut self) -> Option<Message> {
        if let Some(m) = self.stash.pop_front() {
            return Some(m);
        }
        self.receiver.try_recv().ok()
    }

    /// Blocking receive of any message.
    pub fn recv(&mut self) -> Message {
        if let Some(m) = self.stash.pop_front() {
            return m;
        }
        self.receiver.recv().expect("all peers hung up")
    }

    /// Blocking receive of the next message with the given tag;
    /// other messages are stashed (and later returned by
    /// `try_recv`/`recv` in arrival order).
    pub fn recv_match(&mut self, tag: u32) -> Message {
        // Check the stash first.
        if let Some(pos) = self.stash.iter().position(|m| m.tag == tag) {
            return self.stash.remove(pos).unwrap();
        }
        loop {
            let m = self.receiver.recv().expect("all peers hung up");
            if m.tag == tag {
                return m;
            }
            self.stash.push_back(m);
        }
    }

    /// Discard every currently queued or stashed **user** message
    /// (tag below [`RESERVED_TAG_BASE`]), preserving reserved-tag
    /// protocol messages in arrival order. Returns the number of user
    /// messages dropped.
    ///
    /// This is the epoch-boundary cleanup of a persistent runtime:
    /// after global termination, anything user-tagged still queued is
    /// residue of the finished epoch, while reserved traffic (e.g. a
    /// peer's barrier message for the *next* synchronisation) must
    /// survive the sweep.
    pub fn drain_user(&mut self) -> usize {
        let mut kept = VecDeque::new();
        let mut dropped = 0;
        while let Some(m) = self.try_recv() {
            if m.tag >= RESERVED_TAG_BASE {
                kept.push_back(m);
            } else {
                dropped += 1;
            }
        }
        // `try_recv` drained the stash first, so it is empty now.
        self.stash = kept;
        dropped
    }

    /// Synchronise all ranks. Must be called collectively; no other
    /// collective may be in flight concurrently.
    pub fn barrier(&mut self) {
        if self.rank == 0 {
            for _ in 1..self.size() {
                let _ = self.recv_match(TAG_COLLECTIVE);
            }
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, Bytes::new());
            }
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::new());
            let _ = self.recv_match(TAG_COLLECTIVE);
        }
    }

    /// Sum an `f64` across all ranks (collective).
    pub fn allreduce_sum_f64(&mut self, x: f64) -> f64 {
        self.allreduce_f64(x, |a, b| a + b)
    }

    /// Maximum of an `f64` across all ranks (collective).
    pub fn allreduce_max_f64(&mut self, x: f64) -> f64 {
        self.allreduce_f64(x, f64::max)
    }

    /// Sum a `u64` across all ranks (collective).
    pub fn allreduce_sum_u64(&mut self, x: u64) -> u64 {
        let v = self.allreduce_f64(x as f64, |a, b| a + b);
        v.round() as u64
    }

    fn allreduce_f64(&mut self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        if self.rank == 0 {
            let mut acc = x;
            for _ in 1..self.size() {
                let m = self.recv_match(TAG_COLLECTIVE);
                acc = op(acc, f64::from_le_bytes(m.payload[..8].try_into().unwrap()));
            }
            let out = Bytes::copy_from_slice(&acc.to_le_bytes());
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, out.clone());
            }
            acc
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::copy_from_slice(&x.to_le_bytes()));
            let m = self.recv_match(TAG_COLLECTIVE);
            f64::from_le_bytes(m.payload[..8].try_into().unwrap())
        }
    }

    /// Gather each rank's `u64` on every rank (collective).
    pub fn allgather_u64(&mut self, x: u64) -> Vec<u64> {
        if self.rank == 0 {
            let mut all = vec![0u64; self.size()];
            all[0] = x;
            for _ in 1..self.size() {
                let m = self.recv_match(TAG_COLLECTIVE);
                all[m.src] = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
            }
            let mut buf = Vec::with_capacity(8 * self.size());
            for v in &all {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            let payload = Bytes::from(buf);
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, payload.clone());
            }
            all
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::copy_from_slice(&x.to_le_bytes()));
            let m = self.recv_match(TAG_COLLECTIVE);
            m.payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        }
    }
}

/// The simulated "MPI world": spawns rank threads and joins them.
pub struct Universe;

impl Universe {
    /// Create the `n` connected [`Comm`] endpoints of a simulated MPI
    /// world without running anything, in rank order.
    ///
    /// This is the substrate of long-lived (resident) runtimes: the
    /// caller owns the rank threads and their lifetimes, while
    /// [`Universe::run`] remains the one-shot spawn-and-join wrapper.
    pub fn endpoints(n: usize) -> Vec<Comm> {
        assert!(n > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                senders: senders.clone(),
                receiver,
                stash: VecDeque::new(),
            })
            .collect()
    }

    /// Run `f` on `n` rank threads; returns each rank's result in rank
    /// order. Panics in any rank propagate.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Comm) -> R + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for comm in Universe::endpoints(n) {
            let rank = comm.rank();
            let f = f.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || f(comm))
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Universe::run(4, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 7, Bytes::copy_from_slice(&[comm.rank() as u8]));
            let m = comm.recv_match(7);
            (m.src, m.payload[0])
        });
        for (rank, (src, byte)) in results.into_iter().enumerate() {
            assert_eq!(src, (rank + 3) % 4);
            assert_eq!(byte as usize, src);
        }
    }

    #[test]
    fn single_rank_universe() {
        let r = Universe::run(1, |mut comm| {
            comm.barrier();
            comm.allreduce_sum_f64(2.5)
        });
        assert_eq!(r, vec![2.5]);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        let _ = Universe::run(4, |mut comm| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(BEFORE.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = Universe::run(3, |mut comm| {
            let s = comm.allreduce_sum_f64(comm.rank() as f64 + 1.0);
            let m = comm.allreduce_max_f64(comm.rank() as f64);
            (s, m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 2.0);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let results = Universe::run(3, |mut comm| comm.allgather_u64(comm.rank() as u64 * 10));
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn recv_match_stashes_other_tags() {
        let r = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Bytes::copy_from_slice(b"first"));
                comm.send(1, 2, Bytes::copy_from_slice(b"second"));
                0
            } else {
                // Wait for tag 2 first; tag 1 must be stashed, not lost.
                let m2 = comm.recv_match(2);
                assert_eq!(&m2.payload[..], b"second");
                let m1 = comm.try_recv().expect("stashed message lost");
                assert_eq!(m1.tag, 1);
                assert_eq!(&m1.payload[..], b"first");
                1
            }
        });
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn self_send_is_delivered() {
        let r = Universe::run(1, |mut comm| {
            comm.send(0, 9, Bytes::copy_from_slice(b"me"));
            comm.recv_match(9).payload
        });
        assert_eq!(&r[0][..], b"me");
    }

    #[test]
    fn blocking_recv_returns_stashed_first() {
        let r = Universe::run(1, |mut comm| {
            comm.send(0, 3, Bytes::copy_from_slice(b"a"));
            comm.send(0, 4, Bytes::copy_from_slice(b"b"));
            // Match tag 4 first, stashing tag 3; blocking recv must then
            // return the stashed message before any new one.
            let _ = comm.recv_match(4);
            let m = comm.recv();
            m.tag
        });
        assert_eq!(r, vec![3]);
    }

    #[test]
    fn allreduce_max_with_negatives() {
        let results = Universe::run(3, |mut comm| {
            comm.allreduce_max_f64(-(comm.rank() as f64) - 1.0)
        });
        for m in results {
            assert_eq!(m, -1.0);
        }
    }

    #[test]
    fn allgather_single_rank() {
        let r = Universe::run(1, |mut comm| comm.allgather_u64(17));
        assert_eq!(r, vec![vec![17]]);
    }

    #[test]
    fn per_pair_ordering_preserved() {
        let r = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, Bytes::copy_from_slice(&i.to_le_bytes()));
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| {
                        let m = comm.recv_match(5);
                        u32::from_le_bytes(m.payload[..4].try_into().unwrap())
                    })
                    .collect()
            }
        });
        assert_eq!(r[1], (0..100).collect::<Vec<u32>>());
    }
}
