//! Fault-injection chaos suite (requires `--features fault-inject`).
//!
//! Drives the deterministic [`FaultPlan`] harness through the resident
//! [`SolverSession`] and asserts the containment contract end to end:
//!
//! * `injected_panic_fails_one_ticket_others_bit_identical` — a worker
//!   panic resolves exactly the offending ticket `Failed` while two
//!   concurrent campaigns complete bit-identical to their solo runs,
//!   and the relaunched universe still serves plan-cache hits.
//! * `retry_policy_recovers_transient_panic` — a one-shot injected
//!   panic is absorbed by `RetryPolicy`, the rerun iteration is
//!   bit-identical, and the books record the fault, the retry and the
//!   relaunch.
//! * `watchdog_converts_injected_stall_into_failed_ticket` — an
//!   injected worker stall resolves the requester's ticket well inside
//!   the stall duration (the watchdog fired, the requester never
//!   waited out the sleep).
//! * `quarantine_after_consecutive_injected_faults` — K consecutive
//!   injected epoch failures quarantine the campaign: its queue
//!   flushes `Rejected`, later submissions reject at admission, other
//!   campaigns keep being served.
//! * `shutdown_during_fault_leaks_no_tickets` — dropped-without-wait
//!   tickets plus an in-flight fault, then immediate shutdown: no
//!   hang, every kept ticket resolved, every universe retired.
//! * `socket_rank_death_fails_ticket_and_recovers` — over the socket
//!   transport, a rank killed mid-epoch resolves exactly the offending
//!   ticket `Failed` with a `RankDeath` fault blaming the dead rank;
//!   after relaunch the session serves solves bit-identical to the
//!   thread-backend golden.
//! * `soak_seeded_fault_plans` (`--ignored`) — seeded plans across
//!   many sessions: every ticket resolves exactly once, no leaks.

#![cfg(feature = "fault-inject")]

use jsweep::prelude::*;
use jsweep::transport::SolveOutcome;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same small world as `tests/session.rs`: 4³ cells, 2×2×2 patches on
/// 2 simulated ranks, S2.
fn build_world() -> (Arc<StructuredMesh>, Arc<SweepProblem>, QuadratureSet) {
    let mesh = Arc::new(StructuredMesh::unit(4, 4, 4));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (2, 2, 2), 2);
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    (mesh, problem, quad)
}

fn materials(sigma_s: f64) -> Arc<MaterialSet> {
    Arc::new(MaterialSet::homogeneous(
        64,
        Material::uniform(1, 1.0, sigma_s, 1.0),
    ))
}

/// Fixed-iteration config (see `tests/session.rs`): every solve runs
/// exactly 3 epochs, so faulted/retried schedules are reproducible.
fn chaos_config(plan: FaultPlan) -> SnConfig {
    SnConfig {
        grain: 16,
        max_iterations: 3,
        tolerance: 1e-14,
        fault_plan: Some(Arc::new(plan)),
        ..Default::default()
    }
}

/// Solo golden for `materials(sigma_s)` under the chaos iteration
/// budget — no fault plan attached.
fn solo(sigma_s: f64) -> jsweep::transport::SnSolution {
    let (mesh, problem, quad) = build_world();
    let cfg = SnConfig {
        grain: 16,
        max_iterations: 3,
        tolerance: 1e-14,
        ..Default::default()
    };
    solve_parallel_cached(
        mesh,
        problem,
        &quad,
        materials(sigma_s),
        &cfg,
        &PlanCache::new(),
    )
}

#[test]
fn injected_panic_fails_one_ticket_others_bit_identical() {
    let golden_a = solo(0.2);
    let golden_b = solo(0.4);

    let (mesh, problem, quad) = build_world();
    // First compute of patch 0 anywhere panics. Under FIFO the first
    // admitted request (campaign F's) runs first, so the panic lands
    // in F's first epoch.
    let plan = FaultPlan::builder().panic_on_compute(0, 1).build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: chaos_config(plan),
            admission: Box::new(Fifo),
            ..Default::default()
        },
    );
    let f = session.campaign();
    let a = session.campaign();
    let b = session.campaign();

    session.pause();
    let t_f = f.submit(SolveRequest::new(materials(0.3)));
    let t_a = a.submit(SolveRequest::new(materials(0.2)));
    let t_b = b.submit(SolveRequest::new(materials(0.4)));
    session.resume();

    // Exactly the offending ticket fails, with a full blame chain.
    let err = t_f.wait().expect_err("injected panic must fail the ticket");
    match err {
        SessionError::Failed(report) => {
            assert_eq!(report.campaign, f.id());
            assert_eq!(report.seq, 0);
            assert_eq!(report.iteration, 1, "panic lands in the first iteration");
            assert_eq!(report.retries, 0, "default policy spends no retries");
            assert_eq!(report.fault.kind, FaultKind::Panic);
            assert_eq!(
                report.fault.program.map(|p| p.patch.0),
                Some(0),
                "fault blames the injected patch"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // The other campaigns complete on the relaunched universe,
    // bit-identical to their solo runs.
    let out_a = t_a.wait().expect("campaign A served after relaunch");
    let out_b = t_b.wait().expect("campaign B served after relaunch");
    assert_eq!(out_a.solution.phi, golden_a.phi);
    assert_eq!(out_b.solution.phi, golden_b.phi);

    // Plans recorded on the relaunched universe key on the mesh
    // generation, so follow-up admissions are cache hits.
    let out_a2 = a
        .submit(SolveRequest::new(materials(0.2)))
        .wait()
        .expect("post-relaunch solve served");
    let out_b2 = b
        .submit(SolveRequest::new(materials(0.4)))
        .wait()
        .expect("post-relaunch solve served");
    assert_eq!(out_a2.solution.phi, golden_a.phi);
    assert_eq!(out_b2.solution.phi, golden_b.phi);
    assert!(
        a.stats().plan_cache_hits > 0,
        "plan cache must survive the relaunch"
    );

    session.shutdown();
    let stats = session.stats();
    assert_eq!(stats.faults, 1);
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.relaunches, 1);
    assert_eq!(
        stats.universes_launched, 2,
        "faulted universe plus its replacement"
    );
    assert_eq!(stats.universes_retired, stats.universes_launched);
    let faulted: Vec<_> = stats.epoch_log.iter().filter(|e| e.faulted).collect();
    assert_eq!(faulted.len(), 1, "exactly one epoch faulted");
    assert_eq!(faulted[0].campaign, f.id());
    let cf = stats.campaigns.get(&f.id()).expect("campaign F stats");
    assert_eq!(cf.failed, 1);
    assert_eq!(cf.faults, 1);
    assert_eq!(cf.completed, 0);
}

#[test]
fn retry_policy_recovers_transient_panic() {
    let golden = solo(0.3);

    let (mesh, problem, quad) = build_world();
    let plan = FaultPlan::builder().panic_on_compute(0, 1).build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: chaos_config(plan),
            ..Default::default()
        },
    );
    let c = session.campaign();
    let out = c
        .submit(SolveRequest {
            retry: Some(RetryPolicy {
                max_retries: 1,
                backoff: Duration::ZERO,
            }),
            ..SolveRequest::new(materials(0.3))
        })
        .wait()
        .expect("one retry absorbs the one-shot panic");
    assert_eq!(
        out.solution.phi, golden.phi,
        "the rerun iteration must be bit-identical"
    );
    assert_eq!(out.solution.iterations, golden.iterations);

    session.shutdown();
    let stats = session.stats();
    assert_eq!(stats.faults, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.relaunches, 1);
    assert_eq!(stats.universes_retired, stats.universes_launched);
    let cs = stats.campaigns.get(&c.id()).expect("campaign stats");
    assert_eq!(cs.completed, 1);
    assert_eq!(cs.failed, 0);
    assert_eq!(cs.faults, 1);
    assert_eq!(cs.retries, 1);
    // The log shows the faulted attempt at iteration 1 followed by a
    // clean 3-epoch solve.
    let marks: Vec<_> = stats
        .epoch_log
        .iter()
        .map(|e| (e.iteration, e.faulted))
        .collect();
    assert_eq!(marks, vec![(1, true), (1, false), (2, false), (3, false)]);
}

#[test]
fn watchdog_converts_injected_stall_into_failed_ticket() {
    const STALL: Duration = Duration::from_millis(1500);
    const DEADLINE: Duration = Duration::from_millis(200);

    let (mesh, problem, quad) = build_world();
    // Rank 0's only worker sleeps through its first claim batch while
    // holding claims; the watchdog must blame it long before the sleep
    // ends.
    let plan = FaultPlan::builder().stall_worker(0, 0, 1, STALL).build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: SnConfig {
                workers_per_rank: 1,
                watchdog: Some(DEADLINE),
                ..chaos_config(plan)
            },
            ..Default::default()
        },
    );
    let c = session.campaign();
    let t = c.submit(SolveRequest::new(materials(0.3)));
    let t0 = Instant::now();
    let resolved = t
        .wait_timeout(Duration::from_secs(5))
        .expect("watchdog must resolve the ticket, not wait out the stall");
    let elapsed = t0.elapsed();
    match resolved {
        Err(SessionError::Failed(report)) => {
            assert_eq!(report.fault.kind, FaultKind::Stall);
            assert_eq!(report.fault.rank, 0);
            assert!(
                report.fault.payload.contains("watchdog"),
                "stall payload names the watchdog: {}",
                report.fault.payload
            );
        }
        other => panic!("expected Failed(Stall), got {other:?}"),
    }
    assert!(
        elapsed < STALL,
        "ticket resolved in {elapsed:?} — watchdog must beat the {STALL:?} stall"
    );
    // Shutdown joins the stalled worker (it wakes, sees stop, exits).
    session.shutdown();
    let stats = session.stats();
    assert_eq!(stats.faults, 1);
    assert_eq!(stats.universes_retired, stats.universes_launched);
}

#[test]
fn quarantine_after_consecutive_injected_faults() {
    let (mesh, problem, quad) = build_world();
    // Fail campaign 0's first two epoch attempts at the session tier.
    let plan = FaultPlan::builder()
        .fail_epoch(0, 0)
        .fail_epoch(0, 1)
        .build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: chaos_config(plan),
            admission: Box::new(Fifo),
            quarantine_after: 2,
            ..Default::default()
        },
    );
    let c = session.campaign();
    let healthy = session.campaign();
    assert_eq!(c.id(), 0, "the plan targets campaign id 0");

    session.pause();
    let mats = materials(0.3);
    let r0 = c.submit(SolveRequest::new(mats.clone()));
    let r1 = c.submit(SolveRequest::new(mats.clone()));
    let r2 = c.submit(SolveRequest::new(mats.clone()));
    let r3 = c.submit(SolveRequest::new(mats.clone()));
    let h0 = healthy.submit(SolveRequest::new(mats.clone()));
    session.resume();

    // First two requests burn the injected failures (no retry budget).
    for t in [r0, r1] {
        match t.wait() {
            Err(SessionError::Failed(report)) => {
                assert_eq!(report.fault.kind, FaultKind::Injected);
                assert_eq!(report.campaign, 0);
            }
            other => panic!("expected Failed(Injected), got {other:?}"),
        }
    }
    // The second consecutive fault quarantined the campaign: the rest
    // of its queue flushed, and new submissions reject at admission.
    for t in [r2, r3] {
        match t.wait() {
            Err(SessionError::Rejected(why)) => {
                assert!(why.contains("quarantined"), "reject reason: {why}")
            }
            other => panic!("expected Rejected by quarantine, got {other:?}"),
        }
    }
    match c.submit(SolveRequest::new(mats.clone())).wait() {
        Err(SessionError::Rejected(why)) => {
            assert!(why.contains("quarantined"), "reject reason: {why}")
        }
        other => panic!("expected admission-time rejection, got {other:?}"),
    }

    // The healthy campaign is untouched.
    h0.wait().expect("healthy campaign keeps being served");

    session.shutdown();
    let stats = session.stats();
    let cs = stats.campaigns.get(&0).expect("quarantined campaign stats");
    assert!(cs.quarantined);
    assert_eq!(cs.failed, 2);
    assert_eq!(cs.rejected, 3, "two flushed plus one at admission");
    assert_eq!(cs.completed, 0);
    // Injected failures fire before the world ever launches an epoch
    // for campaign 0, so no universe existed to relaunch for them.
    assert_eq!(stats.relaunches, 0);
    assert_eq!(stats.universes_launched, 1, "only the healthy solve ran");
    assert_eq!(stats.universes_retired, stats.universes_launched);
}

#[test]
fn shutdown_during_fault_leaks_no_tickets() {
    let (mesh, problem, quad) = build_world();
    let plan = FaultPlan::builder().panic_on_compute(0, 1).build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: chaos_config(plan),
            admission: Box::new(Fifo),
            ..Default::default()
        },
    );
    let a = session.campaign();
    let b = session.campaign();

    session.pause();
    let mats = materials(0.3);
    let kept: Vec<_> = (0..2)
        .flat_map(|_| {
            [
                a.submit(SolveRequest::new(mats.clone())),
                b.submit(SolveRequest::new(mats.clone())),
            ]
        })
        .collect();
    // Dropped-without-wait tickets must not block shutdown.
    drop(a.submit(SolveRequest::new(mats.clone())));
    drop(b.submit(SolveRequest::new(mats.clone())));
    session.resume();

    // Shutdown drains the admitted queue — including the faulting
    // request and the relaunch it forces — then joins everything.
    session.shutdown();

    let mut failed = 0;
    for t in &kept {
        match t.poll().expect("every kept ticket resolved by shutdown") {
            Ok(_) => {}
            Err(SessionError::Failed(_)) => failed += 1,
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_eq!(failed, 1, "exactly the offending request failed");
    let stats = session.stats();
    assert_eq!(stats.faults, 1);
    assert_eq!(
        stats.universes_retired, stats.universes_launched,
        "no universe leaked across the fault"
    );
}

/// Over the UNIX-socket transport, killing a rank mid-epoch must fail
/// exactly the offending ticket with a [`FaultKind::RankDeath`] fault
/// blaming the dead rank (its peers observe the raw EOF), and the
/// relaunched socket world must serve follow-up solves bit-identical
/// to the thread-backend golden — the cross-transport determinism pin.
#[test]
fn socket_rank_death_fails_ticket_and_recovers() {
    let golden = solo(0.3);

    let (mesh, problem, quad) = build_world();
    // Rank 1 dies on its second epoch entry: iteration 1 completes,
    // iteration 2 kills it while rank 0 is mid-epoch.
    let plan = FaultPlan::builder().kill_rank(1, 2).build();
    let mut session = SolverSession::launch(
        mesh,
        problem,
        quad,
        SessionOptions {
            solver: SnConfig {
                transport: TransportKind::Socket,
                ..chaos_config(plan)
            },
            ..Default::default()
        },
    );
    let c = session.campaign();

    let err = c
        .submit(SolveRequest::new(materials(0.3)))
        .wait()
        .expect_err("rank death must fail the ticket");
    match err {
        SessionError::Failed(report) => {
            assert_eq!(report.fault.kind, FaultKind::RankDeath);
            assert_eq!(
                report.fault.rank, 1,
                "blame the killed rank, not the observer"
            );
            assert_eq!(report.iteration, 2, "death lands in the second iteration");
            assert_eq!(
                report.fault.program, None,
                "no program to blame for a death"
            );
        }
        other => panic!("expected Failed(RankDeath), got {other:?}"),
    }

    // The relaunch stood up a fresh socket world; the kill spec is
    // spent, so the retry runs clean — and must match the thread-backend
    // golden bit for bit.
    let out = c
        .submit(SolveRequest::new(materials(0.3)))
        .wait()
        .expect("session recovers on a fresh socket world");
    assert_eq!(
        out.solution.phi, golden.phi,
        "socket solve must be bit-identical to the thread-backend golden"
    );

    session.shutdown();
    let stats = session.stats();
    assert_eq!(stats.faults, 1);
    assert_eq!(stats.relaunches, 1);
    assert_eq!(
        stats.universes_launched, 2,
        "dead socket world plus its replacement"
    );
    assert_eq!(stats.universes_retired, stats.universes_launched);
    let cs = stats.campaigns.get(&c.id()).expect("campaign stats");
    assert_eq!(cs.failed, 1);
    assert_eq!(cs.completed, 1);
}

/// Seeded chaos soak: many sessions, each with a seeded one-panic
/// plan at an unpredictable point, mixed retry budgets. Every ticket
/// must resolve exactly once and every universe must retire. Run with
/// `cargo test --features fault-inject -- --ignored`.
#[test]
#[ignore = "seeded soak: ~20 session lifecycles, run explicitly"]
fn soak_seeded_fault_plans() {
    const SEEDS: u64 = 20;
    const REQUESTS: usize = 6;
    for seed in 0..SEEDS {
        let (mesh, problem, quad) = build_world();
        let plan = FaultPlan::seeded(seed, 8, 200).build();
        let mut session = SolverSession::launch(
            mesh,
            problem,
            quad,
            SessionOptions {
                solver: chaos_config(plan),
                ..Default::default()
            },
        );
        let a = session.campaign();
        let b = session.campaign();
        let mats = materials(0.3);
        let tickets: Vec<_> = (0..REQUESTS)
            .map(|i| {
                let h = if i % 2 == 0 { &a } else { &b };
                h.submit(SolveRequest {
                    retry: (i % 3 == 0).then_some(RetryPolicy {
                        max_retries: 1,
                        backoff: Duration::ZERO,
                    }),
                    ..SolveRequest::new(mats.clone())
                })
            })
            .collect();
        let mut outcomes: Vec<Result<SolveOutcome, SessionError>> = Vec::new();
        for t in tickets {
            let first = t
                .wait_timeout(Duration::from_secs(60))
                .expect("seed {seed}: ticket resolves");
            // Resolution is sticky: a second look observes the same
            // verdict, never a different or missing one.
            let again = t.poll().expect("seed {seed}: sticky result");
            assert_eq!(first.is_ok(), again.is_ok(), "seed {seed}: sticky result");
            outcomes.push(first);
        }
        assert_eq!(outcomes.len(), REQUESTS);
        for out in &outcomes {
            if let Err(e) = out {
                assert!(
                    matches!(e, SessionError::Failed(_)),
                    "seed {seed}: only fault-failures allowed, got {e:?}"
                );
            }
        }
        session.shutdown();
        let stats = session.stats();
        assert_eq!(
            stats.universes_retired, stats.universes_launched,
            "seed {seed}: universe leak"
        );
    }
}
