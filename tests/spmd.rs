//! True multi-process SPMD solve over the UNIX-socket transport.
//!
//! The parent test re-executes this test binary four times (one child
//! process per rank, selected with `--exact spmd_worker_entry`); each
//! child rendezvouses through [`SocketUniverse::connect`], runs
//! [`solve_parallel_spmd`] on its rank, and writes its converged scalar
//! flux to disk. The parent then compares every child's flux
//! byte-for-byte against an in-process thread-backend
//! [`solve_parallel`] run — the cross-transport, cross-process
//! determinism pin of `docs/transport.md`.

use jsweep::comm::socket::SocketUniverse;
use jsweep::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const ENV_RANK: &str = "JSWEEP_SPMD_RANK";
const ENV_DIR: &str = "JSWEEP_SPMD_DIR";
const ENV_N: &str = "JSWEEP_SPMD_N";
const RANKS: usize = 4;

/// The shared problem: 16³ cells, 4×4×4 patches over 4 ranks, S2.
/// Parent and children must build byte-identical worlds from this.
fn build_world() -> (Arc<StructuredMesh>, Arc<SweepProblem>, QuadratureSet) {
    let mesh = Arc::new(StructuredMesh::unit(16, 16, 16));
    let quad = QuadratureSet::sn(2);
    let patches = decompose_structured(&mesh, (4, 4, 4), RANKS);
    let problem = Arc::new(SweepProblem::build(
        mesh.as_ref(),
        patches,
        &quad,
        &ProblemOptions::default(),
    ));
    (mesh, problem, quad)
}

fn spmd_materials() -> Arc<MaterialSet> {
    Arc::new(MaterialSet::homogeneous(
        16 * 16 * 16,
        Material::uniform(1, 1.0, 0.5, 1.0),
    ))
}

/// Fixed-iteration config so parent and children make identical
/// convergence decisions. Fine-DAG path only: `solve_parallel_spmd`
/// has no coarse replay, so the golden disables it too.
fn spmd_config() -> SnConfig {
    SnConfig {
        grain: 16,
        max_iterations: 3,
        tolerance: 1e-14,
        workers_per_rank: 2,
        coarsen: false,
        ..Default::default()
    }
}

fn phi_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("phi-{rank}.bin"))
}

/// Child-process entry point: a no-op under a normal `cargo test` run,
/// a full SPMD rank when launched by the parent with the rendezvous
/// environment set.
#[test]
fn spmd_worker_entry() {
    let Ok(rank) = std::env::var(ENV_RANK) else {
        return;
    };
    let rank: usize = rank.parse().expect("rank env");
    let dir = PathBuf::from(std::env::var(ENV_DIR).expect("rendezvous dir env"));
    let n: usize = std::env::var(ENV_N)
        .expect("world size env")
        .parse()
        .unwrap();

    let comm = SocketUniverse::connect(&dir, rank, n, Duration::from_secs(60))
        .unwrap_or_else(|e| panic!("rank {rank}: rendezvous failed: {e}"));
    let (mesh, problem, quad) = build_world();
    let solution =
        solve_parallel_spmd(mesh, problem, &quad, spmd_materials(), &spmd_config(), comm);

    let mut bytes = Vec::with_capacity(solution.phi.len() * 8);
    for v in &solution.phi {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(phi_path(&dir, rank), bytes).expect("write flux");
}

/// Four ranks as four OS processes over UNIX sockets must produce a
/// scalar flux bit-identical to the single-process thread-backend
/// solve.
#[test]
fn four_process_socket_solve_matches_thread_backend() {
    // In-process golden over the default thread fabric.
    let (mesh, problem, quad) = build_world();
    let golden = solve_parallel(mesh, problem, &quad, spmd_materials(), &spmd_config());
    assert_eq!(golden.iterations, 3);

    let dir = std::env::temp_dir().join(format!("jsweep-spmd-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().expect("test binary path");
    let children: Vec<_> = (0..RANKS)
        .map(|rank| {
            std::process::Command::new(&exe)
                .arg("--exact")
                .arg("spmd_worker_entry")
                .env(ENV_RANK, rank.to_string())
                .env(ENV_DIR, &dir)
                .env(ENV_N, RANKS.to_string())
                .spawn()
                .expect("spawn rank process")
        })
        .collect();
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("join rank process");
        assert!(status.success(), "rank {rank} process failed: {status}");
    }

    // Every rank converged on the same global flux, and it matches the
    // thread-backend golden byte for byte.
    let mut golden_bytes = Vec::with_capacity(golden.phi.len() * 8);
    for v in &golden.phi {
        golden_bytes.extend_from_slice(&v.to_le_bytes());
    }
    for rank in 0..RANKS {
        let got = std::fs::read(phi_path(&dir, rank)).expect("rank flux written");
        assert_eq!(
            got, golden_bytes,
            "rank {rank}: socket-process flux diverges from thread-backend golden"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
