//! # JSweep — patch-centric data-driven parallel sweeps
//!
//! A Rust reproduction of *"JSweep: A Patch-centric Data-driven
//! Approach for Parallel Sweeps on Large-scale Meshes"* (Yan, Yang,
//! Zhang, Mo). The facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`mesh`] | `jsweep-mesh` | structured / deformed / tetrahedral meshes, patches, partitioners, SFC orders, refinement |
//! | [`quadrature`] | `jsweep-quadrature` | Sn angular quadrature sets |
//! | [`graph`] | `jsweep-graph` | sweep DAGs, priorities (BFS/LDCP/SLBD), vertex clustering, coarsened graph |
//! | [`comm`] | `jsweep-comm` | simulated MPI (rank threads, collectives, termination detection) |
//! | [`core`] | `jsweep-core` | the patch-program abstraction + master/worker runtime |
//! | [`des`] | `jsweep-des` | discrete-event simulator for scaling studies |
//! | [`transport`] | `jsweep-transport` | Sn transport solvers (JSNT-S/JSNT-U analogue), Kobayashi benchmark |
//! | [`baselines`] | `jsweep-baselines` | KBA, BSP (JAxMIN) and PSD-b comparators |
//!
//! ## Quickstart
//!
//! Solve a small fixed-source Sn problem with the JSweep parallel
//! solver (2 simulated MPI ranks × 2 workers):
//!
//! ```
//! use jsweep::prelude::*;
//! use std::sync::Arc;
//!
//! let mesh = Arc::new(StructuredMesh::unit(8, 8, 8));
//! let patches = decompose_structured(&mesh, (4, 4, 4), 2);
//! let quad = QuadratureSet::sn(2);
//! let materials = Arc::new(MaterialSet::homogeneous(
//!     512,
//!     Material::uniform(1, 1.0, 0.5, 1.0),
//! ));
//! let problem = Arc::new(SweepProblem::build(
//!     mesh.as_ref(),
//!     patches,
//!     &quad,
//!     &ProblemOptions::default(),
//! ));
//! let solution = solve_parallel(
//!     mesh,
//!     problem,
//!     &quad,
//!     materials,
//!     &SnConfig { max_iterations: 5, ..Default::default() },
//! );
//! assert!(solution.phi.iter().all(|&phi| phi > 0.0));
//! ```

#![deny(missing_docs)]

pub use jsweep_baselines as baselines;
pub use jsweep_comm as comm;
pub use jsweep_core as core;
pub use jsweep_des as des;
pub use jsweep_graph as graph;
pub use jsweep_mesh as mesh;
pub use jsweep_quadrature as quadrature;
pub use jsweep_transport as transport;

/// The most common imports in one place.
pub mod prelude {
    pub use jsweep_core::{
        run_universe, EpochFault, EpochTuning, FaultKind, FaultPlan, PatchProgram, ProgramFactory,
        ProgramId, RuntimeConfig, Stream, TaskTag, TelemetryHandle, TerminationKind, Universe,
    };
    pub use jsweep_des::{simulate, MachineModel, ProblemOptions, SimOptions, SweepProblem};
    pub use jsweep_graph::PriorityStrategy;
    pub use jsweep_mesh::partition::{decompose_structured, decompose_unstructured};
    pub use jsweep_mesh::{PatchId, PatchSet, StructuredMesh, SweepTopology, TetMesh};
    pub use jsweep_quadrature::{AngleId, QuadratureSet};
    pub use jsweep_transport::{
        solve_parallel, solve_parallel_cached, solve_parallel_spmd, solve_serial, EvictionPolicy,
        FaultReport, Fifo, KernelKind, Material, MaterialSet, PlanCache, RetryPolicy, RoundRobin,
        SessionError, SessionOptions, SnConfig, SolveRequest, SolverSession, TransportKind,
    };
}
