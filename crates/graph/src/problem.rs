//! Problem setup for the simulator: mesh + decomposition + quadrature
//! compiled into per-(patch, angle) subgraphs and priorities.

use crate::priority::{patch_priorities, vertex_priorities, TwoLevelPriority};
use crate::{cycles, PriorityStrategy, Subgraph};
use jsweep_mesh::{PatchSet, SweepTopology};
use jsweep_quadrature::{AngleId, QuadratureSet};
use std::collections::HashSet;
use std::sync::Arc;

/// Construction options for [`SweepProblem::build`].
#[derive(Debug, Clone)]
pub struct ProblemOptions {
    /// Vertex-level priority strategy (the second name in the paper's
    /// "X+Y" notation, e.g. the second SLBD of "SLBD+SLBD").
    pub vertex_strategy: PriorityStrategy,
    /// Patch-level priority strategy (the first name).
    pub patch_strategy: PriorityStrategy,
    /// On axis-aligned structured meshes every angle of an octant
    /// induces the same DAG; sharing cuts memory 8/num_angles-fold.
    /// Must be `false` for unstructured or deformed meshes —
    /// [`SweepProblem::build`] asserts every face normal is
    /// axis-aligned when this is set.
    pub share_octant_dags: bool,
    /// Run the cycle detector per direction and break cyclic
    /// dependencies (needed for deformed meshes; Kuhn tet meshes and
    /// structured meshes are cycle-free).
    pub check_cycles: bool,
}

impl Default for ProblemOptions {
    fn default() -> Self {
        ProblemOptions {
            vertex_strategy: PriorityStrategy::Slbd,
            patch_strategy: PriorityStrategy::Slbd,
            share_octant_dags: false,
            check_cycles: false,
        }
    }
}

/// A fully compiled sweep problem: everything the simulator (and the
/// baselines) need, with octant-level sharing of immutable data.
pub struct SweepProblem {
    /// The decomposition (cells → patches → ranks).
    pub patches: PatchSet,
    /// Number of sweep angles.
    pub num_angles: usize,
    /// `subs[angle][patch]`: induced subgraphs (Arc-shared per octant
    /// when enabled).
    pub subs: Vec<Arc<Vec<Subgraph>>>,
    /// `vprio[angle][patch]`: vertex priorities (shared like `subs`).
    pub vprio: Vec<Arc<Vec<Arc<Vec<i64>>>>>,
    /// `pprio[angle][patch]`: two-level program priorities.
    pub pprio: Vec<Vec<i64>>,
    /// `broken[angle]`: cycle-breaker edge set `(src_cell, dst_cell)`
    /// (empty unless [`ProblemOptions::check_cycles`] found cycles).
    pub broken: Vec<Arc<HashSet<(u32, u32)>>>,
    /// Total `(cell, angle)` vertices.
    pub total_vertices: u64,
    /// `canon[angle]`: the canonical angle whose subgraphs this angle
    /// shares (`canon[a] == a` when the angle owns its own DAG). With
    /// [`ProblemOptions::share_octant_dags`] this is the first angle of
    /// each octant; replay plans record and compile one trace per
    /// canonical angle and share it with every member.
    pub canon: Vec<usize>,
    /// Generation stamp of the mesh this problem was compiled from
    /// (see [`jsweep_mesh::SweepTopology::generation`]). Plan caches
    /// key compiled scheduling state on it: a refined or rebuilt mesh
    /// carries a fresh stamp, so its plans can never collide with ours.
    pub mesh_generation: u64,
    /// FNV-1a digest of the compiled scheduling structure: the
    /// decomposition (patch cell lists + rank map), every canonical
    /// angle's subgraph edges, the octant-sharing layout and the
    /// cycle-breaker sets. Computed once here (a single pass over data
    /// `build` just produced) so plan-cache keys are O(1) per solve.
    /// Priorities and physics are deliberately excluded — they do not
    /// affect replay validity.
    pub dag_fingerprint: u64,
}

impl SweepProblem {
    /// Compile a problem from a mesh, a distributed patch set and a
    /// quadrature set.
    pub fn build<T: SweepTopology + ?Sized>(
        mesh: &T,
        patches: PatchSet,
        quadrature: &QuadratureSet,
        opts: &ProblemOptions,
    ) -> SweepProblem {
        let num_angles = quadrature.len();
        let num_patches = patches.num_patches();
        if opts.share_octant_dags {
            assert_axis_aligned(mesh);
        }
        let mut subs: Vec<Arc<Vec<Subgraph>>> = Vec::with_capacity(num_angles);
        let mut vprio: Vec<Arc<Vec<Arc<Vec<i64>>>>> = Vec::with_capacity(num_angles);
        let mut patch_prio_per_angle: Vec<Vec<i64>> = Vec::with_capacity(num_angles);
        let mut broken_per_angle: Vec<Arc<HashSet<(u32, u32)>>> = Vec::with_capacity(num_angles);

        // Octant sharing: remember the first angle of each octant.
        let mut octant_cache: [Option<usize>; 8] = [None; 8];
        let mut canon: Vec<usize> = Vec::with_capacity(num_angles);

        for (a, ord) in quadrature.iter() {
            let share_from = if opts.share_octant_dags {
                octant_cache[ord.octant().index()]
            } else {
                None
            };
            match share_from {
                Some(src) => {
                    subs.push(subs[src].clone());
                    vprio.push(vprio[src].clone());
                    patch_prio_per_angle.push(patch_prio_per_angle[src].clone());
                    broken_per_angle.push(broken_per_angle[src].clone());
                    canon.push(src);
                }
                None => {
                    let broken = if opts.check_cycles {
                        cycles::broken_edges_for_direction(mesh, ord.dir)
                    } else {
                        HashSet::new()
                    };
                    let angle_subs = Subgraph::build_all(mesh, &patches, a, ord.dir, &broken);
                    let prios: Vec<Arc<Vec<i64>>> = angle_subs
                        .iter()
                        .map(|s| Arc::new(vertex_priorities(s, opts.vertex_strategy)))
                        .collect();
                    let pp = patch_priorities(&angle_subs, &patches, opts.patch_strategy);
                    subs.push(Arc::new(angle_subs));
                    vprio.push(Arc::new(prios));
                    patch_prio_per_angle.push(pp);
                    broken_per_angle.push(Arc::new(broken));
                    canon.push(a.index());
                    if opts.share_octant_dags {
                        octant_cache[ord.octant().index()] = Some(a.index());
                    }
                }
            }
        }

        // Two-level composition: prior(p,a) = prior(a)*C + prior(p).
        let c = TwoLevelPriority::DEFAULT_C;
        let pprio: Vec<Vec<i64>> = patch_prio_per_angle
            .iter()
            .enumerate()
            .map(|(a, pp)| {
                let prior_a = -(a as i64);
                pp.iter().map(|&p| prior_a * c + p).collect()
            })
            .collect();

        let total_vertices = (mesh.num_cells() * num_angles) as u64;
        let _ = num_patches;
        let dag_fingerprint =
            dag_fingerprint(&patches, num_angles, &canon, &subs, &broken_per_angle);
        SweepProblem {
            patches,
            num_angles,
            subs,
            vprio,
            pprio,
            broken: broken_per_angle,
            total_vertices,
            canon,
            mesh_generation: mesh.generation(),
            dag_fingerprint,
        }
    }

    /// The canonical angle whose DAG (and replay trace) angle `a`
    /// shares; `a` itself when the angle owns its DAG.
    #[inline]
    pub fn canonical_angle(&self, a: usize) -> usize {
        self.canon[a]
    }

    /// Angles that own their DAG (one per octant under
    /// [`ProblemOptions::share_octant_dags`], every angle otherwise).
    pub fn canonical_angles(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.num_angles).filter(move |&a| self.canon[a] == a)
    }

    /// Number of patches.
    pub fn num_patches(&self) -> usize {
        self.patches.num_patches()
    }

    /// Task id of `(patch, angle)`.
    #[inline]
    pub fn tid(&self, patch: usize, angle: usize) -> usize {
        angle * self.num_patches() + patch
    }

    /// Inverse of [`SweepProblem::tid`].
    #[inline]
    pub fn patch_angle(&self, tid: usize) -> (usize, usize) {
        (tid % self.num_patches(), tid / self.num_patches())
    }

    /// Total `(patch, angle)` tasks.
    pub fn num_tasks(&self) -> usize {
        self.num_patches() * self.num_angles
    }

    /// The angle id of a task (for diagnostics).
    pub fn angle_of(&self, tid: usize) -> AngleId {
        AngleId((tid / self.num_patches()) as u32)
    }
}

/// FNV-1a accumulation step.
#[inline]
fn fnv(h: &mut u64, x: u64) {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in x.to_le_bytes() {
        *h ^= byte as u64;
        *h = h.wrapping_mul(PRIME);
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Digest the compiled scheduling structure (see
/// [`SweepProblem::dag_fingerprint`]). One pass over the subgraphs of
/// every canonical angle, run once at build time.
fn dag_fingerprint(
    patches: &PatchSet,
    num_angles: usize,
    canon: &[usize],
    subs: &[Arc<Vec<Subgraph>>],
    broken: &[Arc<HashSet<(u32, u32)>>],
) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, num_angles as u64);
    fnv(&mut h, patches.num_patches() as u64);
    fnv(&mut h, patches.num_ranks() as u64);
    for &c in canon {
        fnv(&mut h, c as u64);
    }
    for p in patches.patches() {
        fnv(&mut h, patches.rank_of(p) as u64);
    }
    for a in (0..num_angles).filter(|&a| canon[a] == a) {
        for sub in subs[a].iter() {
            fnv(&mut h, sub.num_vertices() as u64);
            for &cell in &sub.cells {
                fnv(&mut h, cell as u64);
            }
            for &d in &sub.int_dst {
                fnv(&mut h, d as u64);
            }
            for &o in &sub.int_off {
                fnv(&mut h, o as u64);
            }
            for re in &sub.rem_dst {
                fnv(&mut h, ((re.patch.0 as u64) << 32) | re.cell as u64);
            }
            for &o in &sub.rem_off {
                fnv(&mut h, o as u64);
            }
        }
        // Order-independent digest: HashSet iteration order is not
        // deterministic, so XOR per-element hashes.
        let mut broken_digest = 0u64;
        for &(s, d) in broken[a].iter() {
            let mut eh = FNV_OFFSET;
            fnv(&mut eh, ((s as u64) << 32) | d as u64);
            broken_digest ^= eh;
        }
        fnv(&mut h, broken_digest);
    }
    h
}

/// Enforce the [`ProblemOptions::share_octant_dags`] precondition:
/// every face normal must be axis-aligned, which is exactly what makes
/// all directions of one octant induce the same DAG (the flow sign
/// through `±e_axis` depends only on the direction component's sign).
/// Deformed or unstructured meshes fail here instead of silently
/// sharing subgraphs whose edges disagree with the member angle's
/// geometry — downstream, octant-canonical replay traces rely on the
/// shared DAG being exact, not approximate.
fn assert_axis_aligned<T: SweepTopology + ?Sized>(mesh: &T) {
    for c in 0..mesh.num_cells() {
        for f in 0..mesh.num_faces(c) {
            let n = mesh.face(c, f).normal;
            let aligned = n
                .iter()
                .all(|&x| x.abs() < 1e-12 || (x.abs() - 1.0).abs() < 1e-12);
            assert!(
                aligned,
                "share_octant_dags requires an axis-aligned mesh, but cell {c} face {f} \
                 has normal {n:?}; build with share_octant_dags: false"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::{partition, StructuredMesh};

    #[test]
    fn build_structured_with_octant_sharing() {
        let m = StructuredMesh::unit(6, 6, 6);
        let ps = partition::decompose_structured(&m, (3, 3, 3), 2);
        let q = QuadratureSet::sn(4); // 24 angles, 3 per octant
        let opts = ProblemOptions {
            share_octant_dags: true,
            ..Default::default()
        };
        let prob = SweepProblem::build(&m, ps, &q, &opts);
        assert_eq!(prob.num_angles, 24);
        assert_eq!(prob.total_vertices, 216 * 24);
        // Angles of the same octant share the same subgraph allocation.
        let groups: std::collections::HashSet<*const Vec<Subgraph>> =
            prob.subs.iter().map(Arc::as_ptr).collect();
        assert_eq!(groups.len(), 8, "one DAG per octant");
    }

    #[test]
    fn build_unstructured_without_sharing() {
        let m = jsweep_mesh::tetgen::ball(3, 1.0);
        let ps = partition::decompose_unstructured(&m, 50, 2);
        let q = QuadratureSet::sn(2);
        let prob = SweepProblem::build(&m, ps, &q, &ProblemOptions::default());
        let groups: std::collections::HashSet<*const Vec<Subgraph>> =
            prob.subs.iter().map(Arc::as_ptr).collect();
        assert_eq!(groups.len(), 8, "no sharing requested");
    }

    #[test]
    fn canonical_angles_follow_octant_sharing() {
        let m = StructuredMesh::unit(4, 4, 4);
        let q = QuadratureSet::sn(4); // 24 angles, 3 per octant
        let shared = SweepProblem::build(
            &m,
            partition::decompose_structured(&m, (2, 2, 2), 2),
            &q,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        );
        assert_eq!(shared.canonical_angles().count(), 8);
        for a in 0..shared.num_angles {
            let c = shared.canonical_angle(a);
            assert!(c <= a, "canonical angle must come first");
            // Sharing is by allocation identity, so canon must agree
            // with the Arc pointers.
            assert!(Arc::ptr_eq(&shared.subs[a], &shared.subs[c]));
        }
        assert_eq!(shared.mesh_generation, m.generation());

        let owned = SweepProblem::build(
            &m,
            partition::decompose_structured(&m, (2, 2, 2), 2),
            &q,
            &ProblemOptions::default(),
        );
        assert_eq!(owned.canonical_angles().count(), owned.num_angles);
    }

    #[test]
    fn tid_roundtrip() {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = QuadratureSet::sn(2);
        let prob = SweepProblem::build(&m, ps, &q, &ProblemOptions::default());
        for t in 0..prob.num_tasks() {
            let (p, a) = prob.patch_angle(t);
            assert_eq!(prob.tid(p, a), t);
        }
    }

    #[test]
    fn broken_sets_are_shared_per_octant() {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = QuadratureSet::sn(4);
        let prob = SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                share_octant_dags: true,
                check_cycles: true,
                ..Default::default()
            },
        );
        // Structured meshes never produce cycles.
        assert!(prob.broken.iter().all(|b| b.is_empty()));
        // Shared allocations per octant.
        let uniq: std::collections::HashSet<*const HashSet<(u32, u32)>> =
            prob.broken.iter().map(Arc::as_ptr).collect();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    #[should_panic(expected = "share_octant_dags requires an axis-aligned mesh")]
    fn octant_sharing_rejects_non_axis_aligned_meshes() {
        use jsweep_mesh::deformed::DeformedMesh;
        let m = DeformedMesh::jittered(3, 3, 3, 0.3, 7);
        let ps = partition::rcb(&m, 2);
        let q = QuadratureSet::sn(2);
        let _ = SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                share_octant_dags: true,
                ..Default::default()
            },
        );
    }

    #[test]
    fn deformed_mesh_problem_builds_with_cycle_checking() {
        use jsweep_mesh::deformed::DeformedMesh;
        let m = DeformedMesh::jittered(4, 4, 4, 0.3, 5);
        let ps = partition::rcb(&m, 4);
        let q = QuadratureSet::sn(2);
        let prob = SweepProblem::build(
            &m,
            ps,
            &q,
            &ProblemOptions {
                check_cycles: true,
                ..Default::default()
            },
        );
        assert_eq!(prob.broken.len(), 8);
        // Every angle's subgraphs stay acyclic after breaking.
        for subs in &prob.subs {
            for sub in subs.iter() {
                assert!(crate::dag::is_acyclic(&sub.internal_csr()));
            }
        }
    }

    #[test]
    fn program_priorities_are_angle_major() {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        let q = QuadratureSet::sn(2);
        let prob = SweepProblem::build(&m, ps, &q, &ProblemOptions::default());
        for p in 0..prob.num_patches() {
            for p2 in 0..prob.num_patches() {
                assert!(prob.pprio[0][p] > prob.pprio[1][p2]);
            }
        }
    }
}
