//! Construction of the per-(patch, angle) induced subgraph `G_{p,t}`.
//!
//! Vertices are the patch's local cells (for one sweep direction); an
//! edge `(u, v)` means `v` consumes `u`'s outgoing face flux. Edges
//! internal to the patch are stored as a CSR list over local indices;
//! edges leaving the patch are stored as [`RemoteEdge`]s addressed by
//! `(target patch, target global cell)` — at run time they become
//! stream items. The in-degree counter of a vertex counts *all* upwind
//! interior faces, local and remote alike, exactly matching what the
//! Listing-1 `init`/`input`/`compute` functions decrement.

use jsweep_mesh::{PatchId, PatchSet, SweepTopology};
use jsweep_quadrature::AngleId;
use std::collections::HashSet;

/// A downwind dependency crossing the patch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteEdge {
    /// Patch owning the consumer cell.
    pub patch: PatchId,
    /// Consumer cell (global id).
    pub cell: u32,
}

/// The induced subgraph of one `(patch, angle)` sweep task.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The patch this subgraph belongs to.
    pub patch: PatchId,
    /// The sweep angle (task tag).
    pub angle: AngleId,
    /// Global cell id of each local vertex.
    pub cells: Vec<u32>,
    /// Number of upwind interior faces per local vertex (local + remote).
    pub in_degree: Vec<u32>,
    /// CSR offsets of internal downwind edges.
    pub int_off: Vec<u32>,
    /// Internal downwind targets (local vertex indices).
    pub int_dst: Vec<u32>,
    /// CSR offsets of remote downwind edges.
    pub rem_off: Vec<u32>,
    /// Remote downwind targets.
    pub rem_dst: Vec<RemoteEdge>,
}

impl Subgraph {
    /// Build `G_{p,t}` for patch `p` and direction `dir`.
    ///
    /// `broken` lists `(src_cell, dst_cell)` global pairs removed by the
    /// cycle breaker; pass an empty set for ordinary meshes.
    pub fn build<T: SweepTopology + ?Sized>(
        mesh: &T,
        patches: &PatchSet,
        patch: PatchId,
        angle: AngleId,
        dir: [f64; 3],
        broken: &HashSet<(u32, u32)>,
    ) -> Subgraph {
        let cells: Vec<u32> = patches.cells(patch).to_vec();
        let n = cells.len();
        let mut in_degree = vec![0u32; n];
        let mut int_off = vec![0u32; n + 1];
        let mut rem_off = vec![0u32; n + 1];
        let mut int_edges: Vec<(u32, u32)> = Vec::new();
        let mut rem_edges: Vec<(u32, RemoteEdge)> = Vec::new();

        for (li, &cell) in cells.iter().enumerate() {
            let c = cell as usize;
            for f in 0..mesh.num_faces(c) {
                let face = mesh.face(c, f);
                let flow = face.flow(dir);
                let Some(nb) = face.neighbor.cell() else {
                    continue;
                };
                if flow < 0.0 {
                    // Upwind interior face feeds this vertex — unless the
                    // cycle breaker removed the (nb -> c) edge.
                    if !broken.contains(&(nb as u32, cell)) {
                        in_degree[li] += 1;
                    }
                } else if flow > 0.0 {
                    if broken.contains(&(cell, nb as u32)) {
                        continue;
                    }
                    let nb_patch = patches.patch_of(nb);
                    if nb_patch == patch {
                        int_edges.push((li as u32, patches.local_index(nb) as u32));
                    } else {
                        rem_edges.push((
                            li as u32,
                            RemoteEdge {
                                patch: nb_patch,
                                cell: nb as u32,
                            },
                        ));
                    }
                }
                // flow == 0: the face is parallel to the direction; no
                // dependency either way.
            }
        }

        // Pack into CSR.
        for &(s, _) in &int_edges {
            int_off[s as usize + 1] += 1;
        }
        for &(s, _) in &rem_edges {
            rem_off[s as usize + 1] += 1;
        }
        for v in 0..n {
            int_off[v + 1] += int_off[v];
            rem_off[v + 1] += rem_off[v];
        }
        let mut int_dst = vec![0u32; int_edges.len()];
        let mut cursor = int_off[..n].to_vec();
        for &(s, d) in &int_edges {
            int_dst[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }
        let mut rem_dst = vec![
            RemoteEdge {
                patch: PatchId(0),
                cell: 0
            };
            rem_edges.len()
        ];
        let mut cursor = rem_off[..n].to_vec();
        for &(s, d) in &rem_edges {
            rem_dst[cursor[s as usize] as usize] = d;
            cursor[s as usize] += 1;
        }

        Subgraph {
            patch,
            angle,
            cells,
            in_degree,
            int_off,
            int_dst,
            rem_off,
            rem_dst,
        }
    }

    /// Number of local vertices.
    pub fn num_vertices(&self) -> usize {
        self.cells.len()
    }

    /// Internal downwind targets of local vertex `v`.
    #[inline]
    pub fn internal_succ(&self, v: u32) -> &[u32] {
        &self.int_dst[self.int_off[v as usize] as usize..self.int_off[v as usize + 1] as usize]
    }

    /// Index range into `rem_dst` for local vertex `v`'s remote edges.
    #[inline]
    pub fn rem_range(&self, v: u32) -> std::ops::Range<usize> {
        self.rem_off[v as usize] as usize..self.rem_off[v as usize + 1] as usize
    }

    /// Remote downwind targets of local vertex `v`.
    #[inline]
    pub fn remote_succ(&self, v: u32) -> &[RemoteEdge] {
        &self.rem_dst[self.rem_range(v)]
    }

    /// Local vertices with at least one remote downwind edge (the patch
    /// "exit" vertices SLBD steers towards).
    pub fn exit_vertices(&self) -> Vec<u32> {
        (0..self.num_vertices() as u32)
            .filter(|&v| !self.remote_succ(v).is_empty())
            .collect()
    }

    /// Total internal + remote edges.
    pub fn num_edges(&self) -> usize {
        self.int_dst.len() + self.rem_dst.len()
    }

    /// The internal-edge graph as a generic CSR (for priority sweeps).
    pub fn internal_csr(&self) -> crate::dag::Csr {
        crate::dag::Csr {
            off: self.int_off.clone(),
            dst: self.int_dst.clone(),
        }
    }

    /// In-degree counting only internal edges (sources of the *local*
    /// DAG, used by priority computations that ignore remote inputs).
    pub fn internal_in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices()];
        for &d in &self.int_dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Build the subgraphs of *all* patches for one direction.
    pub fn build_all<T: SweepTopology + ?Sized>(
        mesh: &T,
        patches: &PatchSet,
        angle: AngleId,
        dir: [f64; 3],
        broken: &HashSet<(u32, u32)>,
    ) -> Vec<Subgraph> {
        patches
            .patches()
            .map(|p| Subgraph::build(mesh, patches, p, angle, dir, broken))
            .collect()
    }
}

/// Sanity invariant used by tests and property checks: summed over all
/// patches of one direction, every internal+remote edge is matched by
/// exactly one unit of in-degree on its target.
pub fn check_edge_degree_balance(subs: &[Subgraph]) -> Result<(), String> {
    use std::collections::HashMap;
    // (patch index, local vertex) -> expected in-degree from edges.
    let mut incoming: HashMap<(u32, u32), u32> = HashMap::new();
    let mut local_of_cell: HashMap<u32, (u32, u32)> = HashMap::new();
    for sub in subs {
        for (li, &cell) in sub.cells.iter().enumerate() {
            local_of_cell.insert(cell, (sub.patch.0, li as u32));
        }
    }
    for sub in subs {
        for v in 0..sub.num_vertices() as u32 {
            for &d in sub.internal_succ(v) {
                *incoming.entry((sub.patch.0, d)).or_default() += 1;
            }
            for re in sub.remote_succ(v) {
                let &(p, lv) = local_of_cell
                    .get(&re.cell)
                    .ok_or_else(|| format!("remote edge to unknown cell {}", re.cell))?;
                if p != re.patch.0 {
                    return Err(format!(
                        "remote edge patch mismatch: cell {} is in patch {p}, edge says {}",
                        re.cell, re.patch.0
                    ));
                }
                *incoming.entry((p, lv)).or_default() += 1;
            }
        }
    }
    for sub in subs {
        for v in 0..sub.num_vertices() as u32 {
            let expect = incoming.get(&(sub.patch.0, v)).copied().unwrap_or(0);
            if expect != sub.in_degree[v as usize] {
                return Err(format!(
                    "patch {} vertex {v}: in_degree {} but {} incoming edges",
                    sub.patch.0, sub.in_degree[v as usize], expect
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::{partition, StructuredMesh};
    use jsweep_quadrature::QuadratureSet;

    fn setup() -> (StructuredMesh, PatchSet) {
        let m = StructuredMesh::unit(4, 4, 4);
        let ps = partition::decompose_structured(&m, (2, 2, 2), 2);
        (m, ps)
    }

    #[test]
    fn corner_sources_have_zero_in_degree() {
        let m = StructuredMesh::unit(3, 3, 3);
        let ps = PatchSet::single(m.num_cells());
        let sub = Subgraph::build(
            &m,
            &ps,
            PatchId(0),
            AngleId(0),
            [1.0, 1.0, 1.0],
            &HashSet::new(),
        );
        // Only the (0,0,0) cell has no upwind interior faces.
        let sources: Vec<u32> = (0..sub.num_vertices() as u32)
            .filter(|&v| sub.in_degree[v as usize] == 0)
            .collect();
        assert_eq!(sources.len(), 1);
        assert_eq!(sub.cells[sources[0] as usize], m.cell_id(0, 0, 0) as u32);
    }

    #[test]
    fn single_patch_has_no_remote_edges() {
        let m = StructuredMesh::unit(3, 3, 3);
        let ps = PatchSet::single(m.num_cells());
        let sub = Subgraph::build(
            &m,
            &ps,
            PatchId(0),
            AngleId(0),
            [1.0, 0.5, 0.25],
            &HashSet::new(),
        );
        assert!(sub.rem_dst.is_empty());
        assert_eq!(
            sub.int_dst.len(),
            sub.in_degree.iter().map(|&d| d as usize).sum::<usize>()
        );
    }

    #[test]
    fn edge_degree_balance_across_patches() {
        let (m, ps) = setup();
        let q = QuadratureSet::sn(2);
        for (a, o) in q.iter() {
            let subs = Subgraph::build_all(&m, &ps, a, o.dir, &HashSet::new());
            check_edge_degree_balance(&subs).unwrap();
        }
    }

    #[test]
    fn opposite_directions_swap_degrees() {
        let (m, ps) = setup();
        let subs_fwd = Subgraph::build_all(&m, &ps, AngleId(0), [1.0, 1.0, 1.0], &HashSet::new());
        let subs_bwd =
            Subgraph::build_all(&m, &ps, AngleId(1), [-1.0, -1.0, -1.0], &HashSet::new());
        let total_edges_fwd: usize = subs_fwd.iter().map(|s| s.num_edges()).sum();
        let total_edges_bwd: usize = subs_bwd.iter().map(|s| s.num_edges()).sum();
        assert_eq!(total_edges_fwd, total_edges_bwd);
    }

    #[test]
    fn exit_vertices_touch_patch_boundary() {
        let (m, ps) = setup();
        let subs = Subgraph::build_all(&m, &ps, AngleId(0), [1.0, 1.0, 1.0], &HashSet::new());
        for sub in &subs {
            for v in sub.exit_vertices() {
                assert!(!sub.remote_succ(v).is_empty());
            }
        }
        // The overall last patch in the sweep direction has no exits on
        // its far corner; at least one patch must have exits.
        assert!(subs.iter().any(|s| !s.exit_vertices().is_empty()));
    }

    #[test]
    fn broken_edges_are_skipped_on_both_sides() {
        let m = StructuredMesh::unit(2, 1, 1);
        let ps = PatchSet::single(2);
        let mut broken = HashSet::new();
        broken.insert((0u32, 1u32));
        let sub = Subgraph::build(&m, &ps, PatchId(0), AngleId(0), [1.0, 0.0, 0.0], &broken);
        assert_eq!(sub.in_degree, vec![0, 0]);
        assert!(sub.int_dst.is_empty());
    }

    #[test]
    fn internal_csr_matches_edges() {
        let (m, ps) = setup();
        let sub = Subgraph::build(
            &m,
            &ps,
            PatchId(0),
            AngleId(0),
            [1.0, 1.0, 1.0],
            &HashSet::new(),
        );
        let csr = sub.internal_csr();
        assert_eq!(csr.num_edges(), sub.int_dst.len());
        assert!(crate::dag::is_acyclic(&csr));
    }

    #[test]
    fn tet_subgraphs_balance() {
        let m = jsweep_mesh::tetgen::ball(3, 1.0);
        let ps = partition::decompose_unstructured(&m, 40, 2);
        let q = QuadratureSet::sn(2);
        for (a, o) in q.iter().take(3) {
            let subs = Subgraph::build_all(&m, &ps, a, o.dir, &HashSet::new());
            check_edge_degree_balance(&subs).unwrap();
            for sub in &subs {
                assert!(crate::dag::is_acyclic(&sub.internal_csr()));
            }
        }
    }
}
