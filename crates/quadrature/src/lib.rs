//! Discrete-ordinates (Sn) angular quadrature sets.
//!
//! A sweep solver integrates the angular flux over the unit sphere with a
//! finite set of directions ("ordinates") and weights. JSweep's evaluation
//! uses S2 (8 directions, the `SnSweep-S` example), S4 with 24 directions
//! (JSNT-U defaults) and the 320-direction set of the Kobayashi benchmark.
//!
//! This crate provides level-symmetric direction placement with equal
//! per-direction weights (the "EQn"-style variant). Equal weights preserve
//! the two properties every downstream component relies on:
//!
//! * weights sum to `4π` (zeroth moment exact), and
//! * odd moments vanish by octant symmetry (first moment is the zero
//!   vector), so an isotropic source produces an isotropic scalar flux.
//!
//! The sweep *scheduling* behaviour studied by the paper depends only on
//! the direction unit vectors (they induce the DAG), never on the weights.

#![deny(missing_docs)]

pub mod octant;
pub mod sn;

pub use octant::Octant;
pub use sn::{QuadratureSet, SnOrder};

/// A single angular ordinate: unit direction and quadrature weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ordinate {
    /// Unit direction cosines `(μ, η, ξ)` with respect to x, y, z.
    pub dir: [f64; 3],
    /// Quadrature weight; all weights of a set sum to `4π`.
    pub weight: f64,
}

impl Ordinate {
    /// Octant of the unit sphere this ordinate points into.
    pub fn octant(&self) -> Octant {
        Octant::of(self.dir)
    }

    /// Dot product of the direction with an arbitrary vector.
    #[inline]
    pub fn dot(&self, v: [f64; 3]) -> f64 {
        self.dir[0] * v[0] + self.dir[1] * v[1] + self.dir[2] * v[2]
    }
}

/// Identifier of an angular direction within a [`QuadratureSet`].
///
/// Angle ids index `QuadratureSet::ordinates` and double as the
/// task tag of sweep patch-programs (`(patch, angle)` pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AngleId(pub u32);

impl AngleId {
    /// The id as a plain array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinate_dot() {
        let o = Ordinate {
            dir: [1.0, 0.0, 0.0],
            weight: 1.0,
        };
        assert_eq!(o.dot([2.0, 5.0, 7.0]), 2.0);
    }

    #[test]
    fn ordinate_octant_roundtrip() {
        let o = Ordinate {
            dir: [-0.5, 0.5, -std::f64::consts::FRAC_1_SQRT_2],
            weight: 1.0,
        };
        let oct = o.octant();
        assert_eq!(oct.signs(), [-1.0, 1.0, -1.0]);
    }
}
