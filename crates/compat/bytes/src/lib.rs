//! Offline, API-compatible stand-in for the subset of the [`bytes`]
//! crate that jsweep uses: [`Bytes`] (cheap-clone immutable payloads),
//! [`BytesMut`] (growable write buffer) and the [`Buf`]/[`BufMut`]
//! cursor traits.
//!
//! Semantics mirror the real crate: `get_u32` is big-endian, the `_le`
//! variants are little-endian, reads consume from the front and panic
//! on underflow. Only the methods the workspace actually calls (plus a
//! few obvious neighbours) are provided.
//!
//! [`bytes`]: https://docs.rs/bytes

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Internally an `Arc<Vec<u8>>` plus a `[start, end)` window so that
/// clones are reference bumps, [`Buf::advance`] / [`Bytes::slice`] are
/// O(1), and `Vec<u8> -> Bytes` (and therefore [`BytesMut::freeze`])
/// moves the allocation instead of copying it — the zero-copy property
/// the frame codec in `jsweep-core` relies on.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copy `data` into a new owned `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the (remaining) window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Return a sub-window sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable, writable byte buffer; freeze it into a [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

macro_rules! buf_get {
    ($($name:ident, $name_le:ident -> $ty:ty);* $(;)?) => {
        $(
            /// Read a big-endian value, consuming it from the front.
            fn $name(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_be_bytes(raw)
            }

            /// Read a little-endian value, consuming it from the front.
            fn $name_le(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

/// Read access to a buffer of bytes with an implicit front cursor.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes (always the full remainder here: every
    /// implementation in this shim is contiguous).
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Copy bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    buf_get! {
        get_u16, get_u16_le -> u16;
        get_u32, get_u32_le -> u32;
        get_u64, get_u64_le -> u64;
        get_i32, get_i32_le -> i32;
        get_i64, get_i64_le -> i64;
        get_f32, get_f32_le -> f32;
        get_f64, get_f64_le -> f64;
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! buf_put {
    ($($name:ident, $name_le:ident -> $ty:ty);* $(;)?) => {
        $(
            /// Append a big-endian value.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_be_bytes());
            }

            /// Append a little-endian value.
            fn $name_le(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    buf_put! {
        put_u16, put_u16_le -> u16;
        put_u32, put_u32_le -> u32;
        put_u64, put_u64_le -> u64;
        put_i32, put_i32_le -> i32;
        put_i64, put_i64_le -> i64;
        put_f32, put_f32_le -> f32;
        put_f64, put_f64_le -> f64;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_endianness() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32(0xDEAD_BEEF);
        w.put_u32_le(0xDEAD_BEEF);
        let frozen = w.freeze();
        assert_eq!(frozen[..4], [0xDE, 0xAD, 0xBE, 0xEF]);
        let mut r = frozen.clone();
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 0);
        // The original is unaffected by reads on the clone.
        assert_eq!(frozen.len(), 8);
    }

    #[test]
    fn bytes_equality_ignores_window_offsets() {
        let mut a = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        a.advance(2);
        let b = Bytes::copy_from_slice(&[3, 4]);
        assert_eq!(a, b);
    }

    #[test]
    fn slice_shares_allocation() {
        let a = Bytes::copy_from_slice(b"hello world");
        let b = a.slice(6..11);
        assert_eq!(&b[..], b"world");
    }
}
