//! Multigroup kernel benchmark: scalar `solve_cell` (geometry
//! re-derived per group) vs the group-blocked path (`CellGeom` hoisted
//! once per cell, `solve_cell_block_geom` running contiguous
//! `GROUP_BLOCK`-wide group blocks through an autovectorizable inner
//! loop).
//!
//! One "iteration" is a full pass over every cell of the mesh — the
//! per-iteration compute work a sweep does between graph operations —
//! measured best-of-`reps` for G ∈ {1, 8, 16, 32} on a structured hex
//! mesh (step + diamond-difference) and a tet mesh (step). Both
//! variants accumulate the angle-weighted cell flux; the bench asserts
//! the accumulated phi is identical to within `KERNEL_MAX_ULPS`
//! (currently exact) in every mode, so the speedup is never quoted on
//! divergent physics.
//!
//! A machine-readable baseline is written to `BENCH_kernel.json` at
//! the workspace root (CI checks presence after the
//! `cargo bench -- --test` smoke pass). Full mode asserts the ≥1.5×
//! blocked-vs-scalar target at G=16 on the structured mesh.

use jsweep_mesh::{tetgen, StructuredMesh, SweepTopology};
use jsweep_transport::kernel::{
    solve_cell, solve_cell_block_geom, ulp_distance, CellGeom, KernelKind, GROUP_BLOCK,
    KERNEL_MAX_FACES, KERNEL_MAX_ULPS,
};
use std::time::Instant;

/// One measured (mesh, kernel, G) configuration.
struct Case {
    mesh: &'static str,
    cells: usize,
    kernel: &'static str,
    groups: usize,
    scalar_s: f64,
    blocked_s: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.blocked_s
    }
}

/// Deterministic, varied per-group cross sections and source (same for
/// every cell, like a homogeneous `MaterialSet`, so the kernel — not
/// material gather — dominates).
fn group_data(groups: usize) -> (Vec<f64>, Vec<f64>) {
    let sigma_t = (0..groups).map(|g| 0.5 + 0.1 * (g % 7) as f64).collect();
    let q = (0..groups).map(|g| 1.0 + 0.25 * (g % 5) as f64).collect();
    (sigma_t, q)
}

/// Deterministic pseudo-random incoming face fluxes, layout
/// `(cell * max_faces + face) * groups + g` — the program's
/// `face_flux` layout.
fn face_flux(n: usize, mf: usize, groups: usize) -> Vec<f64> {
    (0..n * mf * groups)
        .map(|i| (i.wrapping_mul(2654435761) % 1000) as f64 * 1e-3)
        .collect()
}

/// One scalar-kernel pass over every cell, accumulating weighted phi.
#[allow(clippy::too_many_arguments)]
fn pass_scalar<T: SweepTopology + ?Sized>(
    mesh: &T,
    dir: [f64; 3],
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    flux: &[f64],
    mf: usize,
    weight: f64,
    phi: &mut [f64],
) {
    let groups = sigma_t.len();
    let mut out = vec![0.0; mf * groups];
    let mut psi = vec![0.0; groups];
    for c in 0..mesh.num_cells() {
        let nf = mesh.num_faces(c);
        let base = c * mf * groups;
        solve_cell(
            mesh,
            c,
            dir,
            kind,
            sigma_t,
            q,
            &flux[base..base + nf * groups],
            &mut out[..nf * groups],
            &mut psi,
        );
        for (p, &x) in phi[c * groups..(c + 1) * groups].iter_mut().zip(&psi) {
            *p += weight * x;
        }
    }
}

/// Cells per blocked chunk — a typical cluster size, so the bench's
/// cache-blocking matches `kernel_cluster`'s: group blocks re-stream a
/// cluster-sized cell list whose face data stays cache-resident, not
/// the whole mesh.
const CHUNK: usize = 32;

/// One blocked pass, chunked like the production cluster path: per
/// chunk, hoist `CellGeom` once per cell (phase 0), then stream the
/// chunk's cell list once per group block (phase 1).
#[allow(clippy::too_many_arguments)]
fn pass_blocked<T: SweepTopology + ?Sized>(
    mesh: &T,
    dir: [f64; 3],
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    flux: &[f64],
    mf: usize,
    weight: f64,
    phi: &mut [f64],
) {
    let groups = sigma_t.len();
    let n = mesh.num_cells();
    let mut geoms: Vec<CellGeom> = Vec::with_capacity(CHUNK);
    let mut out = [0.0f64; KERNEL_MAX_FACES * GROUP_BLOCK];
    let mut psi = [0.0f64; GROUP_BLOCK];
    let mut start = 0;
    while start < n {
        let end = (start + CHUNK).min(n);
        geoms.clear();
        geoms.extend((start..end).map(|c| CellGeom::new(mesh, c, dir)));
        let mut g0 = 0;
        while g0 < groups {
            let b = GROUP_BLOCK.min(groups - g0);
            for (i, geom) in geoms.iter().enumerate() {
                let c = start + i;
                let base = c * mf * groups + g0;
                solve_cell_block_geom(
                    geom,
                    kind,
                    &sigma_t[g0..g0 + b],
                    &q[g0..g0 + b],
                    &flux[base..],
                    groups,
                    &mut out,
                    GROUP_BLOCK,
                    &mut psi[..b],
                );
                let pbase = c * groups + g0;
                for (p, &x) in phi[pbase..pbase + b].iter_mut().zip(&psi[..b]) {
                    *p += weight * x;
                }
            }
            g0 += b;
        }
        start = end;
    }
}

/// Measure one configuration, best-of-`reps` per variant, asserting
/// the accumulated phi agrees within [`KERNEL_MAX_ULPS`].
fn measure<T: SweepTopology + ?Sized>(
    mesh: &T,
    mesh_label: &'static str,
    kind: KernelKind,
    kernel_label: &'static str,
    groups: usize,
    reps: usize,
) -> Case {
    let dir = [0.48, 0.36, 0.8];
    let weight = 1.375;
    let n = mesh.num_cells();
    let mf = (0..n).map(|c| mesh.num_faces(c)).max().unwrap();
    let (sigma_t, q) = group_data(groups);
    let flux = face_flux(n, mf, groups);

    let mut phi_scalar = vec![0.0; n * groups];
    let mut scalar_s = f64::INFINITY;
    for _ in 0..reps {
        phi_scalar.iter_mut().for_each(|x| *x = 0.0);
        let t0 = Instant::now();
        pass_scalar(
            mesh,
            dir,
            kind,
            &sigma_t,
            &q,
            &flux,
            mf,
            weight,
            &mut phi_scalar,
        );
        scalar_s = scalar_s.min(t0.elapsed().as_secs_f64());
    }

    let mut phi_blocked = vec![0.0; n * groups];
    let mut blocked_s = f64::INFINITY;
    for _ in 0..reps {
        phi_blocked.iter_mut().for_each(|x| *x = 0.0);
        let t0 = Instant::now();
        pass_blocked(
            mesh,
            dir,
            kind,
            &sigma_t,
            &q,
            &flux,
            mf,
            weight,
            &mut phi_blocked,
        );
        blocked_s = blocked_s.min(t0.elapsed().as_secs_f64());
    }

    for (i, (a, b)) in phi_scalar.iter().zip(&phi_blocked).enumerate() {
        // `<=` so the assertion tracks KERNEL_MAX_ULPS if the exactness
        // contract is ever relaxed (it is 0 today, making this `==`).
        #[allow(clippy::absurd_extreme_comparisons)]
        let ok = ulp_distance(*a, *b) <= KERNEL_MAX_ULPS;
        assert!(
            ok,
            "{mesh_label}/{kernel_label}/G={groups}: phi diverged at {i}: {a} vs {b}"
        );
    }

    Case {
        mesh: mesh_label,
        cells: n,
        kernel: kernel_label,
        groups,
        scalar_s,
        blocked_s,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Full mode: 12³ structured hexes (both kernels) and a ~3k-cell
    // tet cube (step), best-of-7 per variant — enough cells that the
    // per-pass working set spills L1/L2 like a real patch stream.
    // Test mode shrinks the meshes and runs each variant once: a smoke
    // pass proving the harness and the bit-identity assertion.
    let (hex, tet, reps) = if test_mode {
        (StructuredMesh::unit(6, 6, 6), tetgen::cube(2, 1.0), 1)
    } else {
        (StructuredMesh::unit(12, 12, 12), tetgen::cube(6, 1.0), 7)
    };
    let group_counts = [1usize, 8, 16, 32];

    let mut cases = Vec::new();
    for &g in &group_counts {
        cases.push(measure(
            &hex,
            "structured",
            KernelKind::Step,
            "step",
            g,
            reps,
        ));
    }
    for &g in &group_counts {
        cases.push(measure(
            &hex,
            "structured",
            KernelKind::DiamondDifference,
            "dd",
            g,
            reps,
        ));
    }
    for &g in &group_counts {
        cases.push(measure(&tet, "tet", KernelKind::Step, "step", g, reps));
    }

    for c in &cases {
        println!(
            "kernel {:>10} {:>4} G={:<2} ({} cells): scalar {:>9.3} ms, blocked {:>9.3} ms ({:.2}x)",
            c.mesh,
            c.kernel,
            c.groups,
            c.cells,
            c.scalar_s * 1e3,
            c.blocked_s * 1e3,
            c.speedup()
        );
    }

    let headline = cases
        .iter()
        .find(|c| c.mesh == "structured" && c.kernel == "step" && c.groups == 16)
        .expect("G=16 structured step case");
    let headline_speedup = headline.speedup();
    println!("kernel headline: {headline_speedup:.2}x blocked vs scalar at G=16 (structured step)");

    // Bit-identity is asserted per case in both modes. The wall-clock
    // target is full-mode only (a single test-mode sample on a noisy
    // CI core would flake), and only for the step kernel: scalar DD
    // already hoists its face pairing per cell (see `solve_cell`), so
    // blocking eliminates no per-group geometry there — the DD cases
    // are recorded for the register but not held to the 1.5x bar.
    if !test_mode {
        for c in &cases {
            if c.kernel == "step" && c.groups >= 16 {
                assert!(
                    c.speedup() >= 1.5,
                    "{}/{}/G={} blocked speedup {:.2}x below the 1.5x target",
                    c.mesh,
                    c.kernel,
                    c.groups,
                    c.speedup()
                );
            }
        }
    }

    let case_json: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"mesh\": \"{mesh}\",\n",
                    "      \"cells\": {cells},\n",
                    "      \"kernel\": \"{kernel}\",\n",
                    "      \"groups\": {groups},\n",
                    "      \"scalar_pass_seconds\": {s:.9},\n",
                    "      \"blocked_pass_seconds\": {b:.9},\n",
                    "      \"blocked_speedup\": {sp:.3}\n",
                    "    }}"
                ),
                mesh = c.mesh,
                cells = c.cells,
                kernel = c.kernel,
                groups = c.groups,
                s = c.scalar_s,
                b = c.blocked_s,
                sp = c.speedup(),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kernel\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"group_block\": {gb},\n",
            "  \"max_ulps\": {ulps},\n",
            "  \"cases\": [\n{cases}\n  ],\n",
            "  \"g16_structured_step_speedup\": {hs:.3},\n",
            "  \"phi_within_max_ulps\": true\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        gb = GROUP_BLOCK,
        ulps = KERNEL_MAX_ULPS,
        cases = case_json.join(",\n"),
        hs = headline_speedup,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_kernel.json");
    if test_mode && out.exists() {
        // Smoke numbers are not a baseline: keep the committed full-
        // mode file, only prove the bench still runs end to end.
        println!("test mode: committed baseline left in place");
    } else {
        std::fs::write(&out, json).expect("write BENCH_kernel.json");
        println!("baseline written to {}", out.display());
    }
}
