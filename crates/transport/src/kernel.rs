//! Per-(cell, angle) transport kernels.
//!
//! Both kernels solve the within-cell balance equation for the angular
//! flux given incoming face fluxes, then express outgoing face fluxes:
//!
//! * [`KernelKind::Step`] (upwind/step characteristic): first-order,
//!   positive, works on any polyhedral cell — the JSNT-U choice for
//!   tetrahedra;
//! * [`KernelKind::DiamondDifference`] — the classic second-order
//!   structured-mesh scheme (TORT/JSNT-S family) with a set-to-zero
//!   negative-flux fixup. Requires the structured face pairing
//!   (`face ^ 1` is the opposite face).

use jsweep_mesh::SweepTopology;

/// Which cell kernel the sweep applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// First-order upwind; any cell shape.
    Step,
    /// Diamond difference with negative-flux fixup; structured
    /// hexahedra only.
    DiamondDifference,
}

/// Solve one cell for one direction and `g` groups.
///
/// * `incoming[f * groups + g]` — incoming angular flux on face `f`
///   (only consulted for upwind faces; boundary faces must be
///   pre-filled with the boundary condition, 0 for vacuum);
/// * `q[g]` — total emission density (scattering + external) / 4π;
/// * `sigma_t[g]` — total cross section;
/// * `psi_out[f * groups + g]` — outgoing angular flux written for
///   every downwind face (untouched for upwind faces);
/// * `psi_cell[g]` — cell-average angular flux written on return.
#[allow(clippy::too_many_arguments)]
pub fn solve_cell<T: SweepTopology + ?Sized>(
    mesh: &T,
    cell: usize,
    dir: [f64; 3],
    kind: KernelKind,
    sigma_t: &[f64],
    q: &[f64],
    incoming: &[f64],
    psi_out: &mut [f64],
    psi_cell: &mut [f64],
) {
    let groups = sigma_t.len();
    let nf = mesh.num_faces(cell);
    debug_assert_eq!(incoming.len(), nf * groups);
    debug_assert_eq!(psi_out.len(), nf * groups);
    let volume = mesh.cell_volume(cell);

    match kind {
        KernelKind::Step => {
            // ψ_c = (q V + Σ_in |Ω·n A| ψ_in) / (σ_t V + Σ_out Ω·n A),
            // ψ_out = ψ_c on every downwind face.
            for g in 0..groups {
                let mut num = q[g] * volume;
                let mut den = sigma_t[g] * volume;
                for f in 0..nf {
                    let face = mesh.face(cell, f);
                    let flow = face.flow(dir);
                    if flow < 0.0 {
                        num += (-flow) * incoming[f * groups + g];
                    } else {
                        den += flow;
                    }
                }
                let psi = if den > 0.0 { num / den } else { 0.0 };
                psi_cell[g] = psi;
                for f in 0..nf {
                    let face = mesh.face(cell, f);
                    if face.flow(dir) > 0.0 {
                        psi_out[f * groups + g] = psi;
                    }
                }
            }
        }
        KernelKind::DiamondDifference => {
            assert_eq!(nf, 6, "diamond difference needs hexahedral cells");
            // Per axis: upwind face u, downwind face d = u ^ 1.
            // ψ_c = (q V + Σ_ax 2 |Ω·n A| ψ_in) / (σ_t V + Σ_ax 2 |Ω·n A|)
            // ψ_out = 2 ψ_c − ψ_in (clamped at 0: set-to-zero fixup).
            let mut up = [0usize; 3];
            let mut coef = [0f64; 3];
            for ax in 0..3 {
                let f0 = 2 * ax;
                let face = mesh.face(cell, f0);
                let flow = face.flow(dir);
                if flow < 0.0 {
                    up[ax] = f0;
                    coef[ax] = -flow;
                } else {
                    up[ax] = f0 + 1;
                    coef[ax] = flow.max(mesh.face(cell, f0 + 1).flow(dir).abs());
                }
            }
            for g in 0..groups {
                let mut num = q[g] * volume;
                let mut den = sigma_t[g] * volume;
                for ax in 0..3 {
                    num += 2.0 * coef[ax] * incoming[up[ax] * groups + g];
                    den += 2.0 * coef[ax];
                }
                let psi = if den > 0.0 { num / den } else { 0.0 };
                psi_cell[g] = psi;
                for ax in 0..3 {
                    let d = up[ax] ^ 1;
                    let out = 2.0 * psi - incoming[up[ax] * groups + g];
                    // Negative-flux fixup.
                    psi_out[d * groups + g] = out.max(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsweep_mesh::StructuredMesh;

    fn one_cell() -> StructuredMesh {
        StructuredMesh::unit(1, 1, 1)
    }

    #[test]
    fn step_infinite_medium_limit() {
        // With incoming flux equal to q/σt on all upwind faces, the cell
        // flux is exactly q/σt (the infinite-medium solution).
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let q = 2.0;
        let st = 4.0;
        let expected = q / st;
        let mut incoming = vec![0.0; 6];
        for (f, inc) in incoming.iter_mut().enumerate() {
            if m.face(0, f).flow(dir) < 0.0 {
                *inc = expected;
            }
        }
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[st],
            &[q],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((psi[0] - expected).abs() < 1e-14);
        assert!((out[1] - expected).abs() < 1e-14); // +x face downwind
    }

    #[test]
    fn dd_infinite_medium_limit() {
        let m = one_cell();
        let dir = [0.6, 0.64, 0.48];
        let q = 3.0;
        let st = 1.5;
        let expected = q / st;
        let mut incoming = vec![0.0; 6];
        for (f, inc) in incoming.iter_mut().enumerate() {
            if m.face(0, f).flow(dir) < 0.0 {
                *inc = expected;
            }
        }
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::DiamondDifference,
            &[st],
            &[q],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((psi[0] - expected).abs() < 1e-13);
        for (f, o) in out.iter().enumerate() {
            if m.face(0, f).flow(dir) > 0.0 {
                assert!((o - expected).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn step_attenuates_without_source() {
        // No source: outgoing must be strictly below incoming.
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 1.0; // -x face is upwind for +x direction
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[2.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!(psi[0] > 0.0 && psi[0] < 1.0);
        assert!(out[1] < 1.0);
    }

    #[test]
    fn dd_fixup_never_negative() {
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 1.0;
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        // Strong absorber drives the diamond extrapolation negative.
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::DiamondDifference,
            &[50.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        for v in &out {
            assert!(*v >= 0.0, "fixup failed: {out:?}");
        }
    }

    #[test]
    fn step_vacuum_and_void_passes_flux_through() {
        // Zero cross section, zero source: flux is transported without
        // attenuation (conservation through a void cell).
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let mut incoming = vec![0.0; 6];
        incoming[0] = 0.7;
        let mut out = vec![0.0; 6];
        let mut psi = vec![0.0];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &[0.0],
            &[0.0],
            &incoming,
            &mut out,
            &mut psi,
        );
        assert!((out[1] - 0.7).abs() < 1e-14);
    }

    #[test]
    fn multigroup_groups_are_independent() {
        let m = one_cell();
        let dir = [1.0, 0.0, 0.0];
        let groups = 3;
        let sigma_t = [1.0, 2.0, 4.0];
        let q = [1.0, 2.0, 4.0];
        let incoming = vec![0.0; 6 * groups];
        let mut out = vec![0.0; 6 * groups];
        let mut psi = vec![0.0; groups];
        solve_cell(
            &m,
            0,
            dir,
            KernelKind::Step,
            &sigma_t,
            &q,
            &incoming,
            &mut out,
            &mut psi,
        );
        // Each group must match an independent single-group solve.
        for g in 0..groups {
            let inc1 = vec![0.0; 6];
            let mut out1 = vec![0.0; 6];
            let mut psi1 = vec![0.0];
            solve_cell(
                &m,
                0,
                dir,
                KernelKind::Step,
                &[sigma_t[g]],
                &[q[g]],
                &inc1,
                &mut out1,
                &mut psi1,
            );
            assert!((psi[g] - psi1[0]).abs() < 1e-14, "group {g}");
            for f in 0..6 {
                assert!((out[f * groups + g] - out1[f]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn step_works_on_tets() {
        let m = jsweep_mesh::tetgen::cube(1, 1.0);
        let dir = [0.3, 0.5, 0.81];
        let mut psi = vec![0.0];
        for c in 0..m.num_cells() {
            let incoming = vec![0.5; 4];
            let mut out = vec![0.0; 4];
            solve_cell(
                &m,
                c,
                dir,
                KernelKind::Step,
                &[1.0],
                &[0.5],
                &incoming,
                &mut out,
                &mut psi,
            );
            assert!(psi[0] > 0.0 && psi[0].is_finite());
        }
    }
}
