//! The per-lane event store: a fixed-capacity, lock-free,
//! single-writer/any-reader span ring.
//!
//! Each runtime thread (one *lane*) owns exactly one writer; pushes are
//! wait-free (a handful of relaxed atomic stores plus two fences) and
//! never block or allocate, so recording is safe on the claim/compute
//! hot path. Readers snapshot concurrently through a per-slot seqlock:
//! a slot being overwritten while read is detected by its sequence
//! number and skipped, never torn. When the ring wraps, the oldest
//! events are overwritten — [`SpanRing::dropped`] says how many were
//! lost, so exporters can report truncation instead of hiding it.
//!
//! Every slot field is an individual atomic (no `UnsafeCell`), so a
//! racing read is at worst *stale*, never undefined behaviour.

use crate::event::{Event, EventKind};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// One ring slot. `seq` is odd while a write is in flight and even
/// (two per generation) when the payload fields are consistent.
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    t0: AtomicU64,
    t1: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            t0: AtomicU64::new(0),
            t1: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity single-writer span ring (see the [module docs](self)).
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total events ever pushed; the ring holds the newest
    /// `min(head, capacity)` of them.
    head: AtomicU64,
    mask: u64,
}

impl SpanRing {
    /// Ring with room for `capacity` events (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(2).next_power_of_two();
        SpanRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    /// Number of events the ring can hold before overwriting.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append one event. **Single writer**: only the lane-owning thread
    /// may call this; concurrent readers are always safe.
    pub fn push(&self, e: Event) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        let s0 = slot.seq.load(Ordering::Relaxed);
        // Odd seq marks the write in flight; the release fence keeps it
        // ordered before the payload stores for any acquire reader.
        slot.seq.store(s0 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(e.kind as u64, Ordering::Relaxed);
        slot.t0.store(e.t0, Ordering::Relaxed);
        slot.t1.store(e.t1, Ordering::Relaxed);
        slot.a.store(e.a, Ordering::Relaxed);
        slot.b.store(e.b, Ordering::Relaxed);
        // Even again: payload consistent. Release pairs with the
        // reader's acquire load of `seq`.
        slot.seq.store(s0 + 2, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Total events ever pushed (including overwritten ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wrap-around so far.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Copy out the currently held events, oldest first. Safe against a
    /// concurrent writer: slots mid-overwrite are skipped (they will be
    /// newer events a later snapshot can still see), never torn.
    pub fn snapshot(&self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let held = head.min(self.slots.len() as u64);
        let mut out = Vec::with_capacity(held as usize);
        for i in (head - held)..head {
            let slot = &self.slots[(i & self.mask) as usize];
            // Bounded retries: under a racing writer the slot's content
            // is changing anyway — give up and skip rather than spin.
            for _ in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    continue;
                }
                let kind = slot.kind.load(Ordering::Relaxed);
                let t0 = slot.t0.load(Ordering::Relaxed);
                let t1 = slot.t1.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue;
                }
                if let Some(kind) = EventKind::from_u64(kind) {
                    out.push(Event { kind, t0, t1, a, b });
                }
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t0: u64) -> Event {
        Event {
            kind,
            t0,
            t1: t0 + 1,
            a: t0 * 10,
            b: t0 * 100,
        }
    }

    #[test]
    fn push_and_snapshot_round_trip_in_order() {
        let ring = SpanRing::new(8);
        for i in 1..=5 {
            ring.push(ev(EventKind::Compute, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 5);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.t0, i as u64 + 1);
            assert_eq!(e.a, (i as u64 + 1) * 10);
            assert_eq!(e.kind, EventKind::Compute);
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn wrap_keeps_newest_and_counts_dropped() {
        let ring = SpanRing::new(4);
        for i in 1..=10 {
            ring.push(ev(EventKind::Claim, i));
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got.iter().map(|e| e.t0).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpanRing::new(0).capacity(), 2);
        assert_eq!(SpanRing::new(3).capacity(), 4);
        assert_eq!(SpanRing::new(1000).capacity(), 1024);
    }

    #[test]
    fn concurrent_reader_never_sees_torn_events() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(64));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 1..=200_000u64 {
                    // Invariant per event: t1 = t0 + 1, a = t0 * 10.
                    ring.push(ev(EventKind::Send, i));
                }
            })
        };
        let mut seen = 0usize;
        while seen < 50 {
            for e in ring.snapshot() {
                assert_eq!(e.t1, e.t0 + 1, "torn read: t0/t1 mismatch");
                assert_eq!(e.a, e.t0 * 10, "torn read: t0/a mismatch");
                seen += 1;
            }
        }
        writer.join().unwrap();
        let after = ring.snapshot();
        assert_eq!(after.len(), 64);
        assert_eq!(after.last().unwrap().t0, 200_000);
    }
}
