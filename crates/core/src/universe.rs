//! The persistent sweep universe: a resident runtime that lives for a
//! whole multi-epoch computation.
//!
//! [`run_universe`](crate::run_universe) pays a full spawn/teardown per
//! call: rank threads, worker threads, pool, route table and every
//! patch-program are built, run to quiescence and dropped. That is the
//! right shape for a single sweep — and pure overhead for iterative
//! workloads (source iterations, time steps, eigenvalue loops, AMR
//! cycles) that run the *same* program topology dozens of times with
//! only the input data changing.
//!
//! A [`Universe`] keeps the whole world resident instead:
//!
//! * **launch** — rank threads, workers, pools and master routing
//!   state are created once ([`Universe::launch`]);
//! * **epoch** — each [`Universe::run_epoch`] call re-activates every
//!   program, runs the data-driven computation to distributed
//!   termination (either detector) and returns per-rank [`RunStats`];
//!   programs persist across epochs and are re-armed in place through
//!   [`PatchProgram::reset`](crate::PatchProgram::reset) with the
//!   caller's opaque epoch input — no reallocation of their buffers;
//! * **shutdown** — [`Universe::shutdown`] (or drop) stops the pools
//!   and joins every thread.
//!
//! Epochs are separated by a two-barrier fence on the simulated MPI
//! world, so termination of epoch `k` is globally observed before any
//! rank starts epoch `k+1` — streams can never bleed between epochs.

use crate::engine::{Rank, RuntimeConfig};
use crate::program::{EpochInput, ProgramFactory};
use crate::stats::RunStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use jsweep_comm::Universe as CommUniverse;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Per-epoch overrides of the worker batching knobs (`None` keeps the
/// previous value). Lets one resident universe run a recording epoch
/// with fine-path batching and replay epochs with replay-tuned
/// batching, matching the per-mode `RuntimeConfig`s the respawning
/// solver used.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochTuning {
    /// Override for [`RuntimeConfig::report_flush_streams`].
    pub report_flush_streams: Option<usize>,
    /// Override for [`RuntimeConfig::claim_batch`].
    pub claim_batch: Option<usize>,
}

enum Cmd {
    Epoch(Arc<EpochInput>, EpochTuning),
    Shutdown,
}

struct RankHandle {
    cmd: Sender<Cmd>,
    stats: Receiver<RunStats>,
    join: Option<JoinHandle<()>>,
}

/// A resident simulated-MPI world: `num_ranks` rank threads (each with
/// its master state and worker threads) that stay alive across any
/// number of epochs. See the [module docs](self) for the lifecycle.
pub struct Universe {
    ranks: Vec<RankHandle>,
    epochs_run: u64,
}

impl Universe {
    /// Spawn a resident world of `num_ranks` ranks sharing `factory`.
    ///
    /// Programs created during the first epoch come straight from the
    /// factory — the factory's initial state *is* the first epoch's
    /// input. From the second epoch on, every resident (and every
    /// late-materialising) program is re-armed via
    /// [`PatchProgram::reset`](crate::PatchProgram::reset) with the
    /// input passed to [`Universe::run_epoch`].
    pub fn launch<F: ProgramFactory>(
        num_ranks: usize,
        factory: Arc<F>,
        config: RuntimeConfig,
    ) -> Universe {
        let ranks = CommUniverse::endpoints(num_ranks)
            .into_iter()
            .map(|comm| {
                let (cmd_tx, cmd_rx) = unbounded::<Cmd>();
                let (stats_tx, stats_rx) = unbounded::<RunStats>();
                let factory = factory.clone();
                let config = config.clone();
                let rank_id = comm.rank();
                let join = std::thread::Builder::new()
                    .name(format!("universe-rank-{rank_id}"))
                    .spawn(move || {
                        let mut rank = Rank::launch(comm, factory, &config);
                        while let Ok(cmd) = cmd_rx.recv() {
                            match cmd {
                                Cmd::Epoch(input, tuning) => {
                                    let stats = rank.run_epoch(
                                        &input,
                                        tuning.report_flush_streams,
                                        tuning.claim_batch,
                                    );
                                    if stats_tx.send(stats).is_err() {
                                        break;
                                    }
                                }
                                Cmd::Shutdown => break,
                            }
                        }
                        rank.shutdown();
                    })
                    .expect("spawn universe rank thread");
                RankHandle {
                    cmd: cmd_tx,
                    stats: stats_rx,
                    join: Some(join),
                }
            })
            .collect();
        Universe {
            ranks,
            epochs_run: 0,
        }
    }

    /// Number of resident ranks.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Epochs completed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Run one epoch to global termination on every rank; returns the
    /// per-rank [`RunStats`] in rank order.
    ///
    /// `input` is shared with every rank and handed to each resident
    /// program's [`PatchProgram::reset`](crate::PatchProgram::reset)
    /// before the epoch's activation (epochs ≥ 2; the first epoch runs
    /// factory-fresh programs as-is). Epochs with no input use
    /// `Arc::new(())`.
    pub fn run_epoch(&mut self, input: Arc<EpochInput>) -> Vec<RunStats> {
        self.run_epoch_tuned(input, EpochTuning::default())
    }

    /// [`Universe::run_epoch`] with per-epoch batching-knob overrides.
    pub fn run_epoch_tuned(
        &mut self,
        input: Arc<EpochInput>,
        tuning: EpochTuning,
    ) -> Vec<RunStats> {
        for r in &self.ranks {
            if r.cmd.send(Cmd::Epoch(input.clone(), tuning)).is_err() {
                panic!("universe rank thread exited before shutdown");
            }
        }
        let stats = self
            .ranks
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.stats
                    .recv()
                    .unwrap_or_else(|_| panic!("universe rank {i} died during the epoch"))
            })
            .collect();
        self.epochs_run += 1;
        stats
    }

    /// Stop every rank: pools stop, workers and rank threads join.
    /// Idempotent; also invoked on drop, so an explicit call is only
    /// needed to observe thread panics eagerly.
    pub fn shutdown(&mut self) {
        for r in &self.ranks {
            // Ignore a closed channel: the rank already exited.
            let _ = r.cmd.send(Cmd::Shutdown);
        }
        for r in &mut self.ranks {
            if let Some(join) = r.join.take() {
                join.join().expect("universe rank thread panicked");
            }
        }
    }
}

impl Drop for Universe {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Don't double-panic while unwinding; rank threads exit on
            // their own once the command channels close.
            return;
        }
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ComputeCtx, PatchProgram, ProgramId, Stream, TaskTag};
    use crate::TerminationKind;
    use bytes::Bytes;
    use jsweep_mesh::PatchId;
    use parking_lot::Mutex;

    /// Epoch-aware accumulator ring: each epoch, every program adds the
    /// epoch's offset (the downcast epoch input) to a running sum and
    /// forwards a token around the ring once. Exercises reset, the
    /// fence, and per-epoch stats isolation.
    struct RingProgram {
        id: ProgramId,
        n: u32,
        offset: u64,
        token: Option<u64>,
        fired: bool,
        sums: Arc<Mutex<Vec<u64>>>,
    }

    impl PatchProgram for RingProgram {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            self.token = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            let starts = self.id.patch.0 == 0 && !self.fired;
            if starts {
                self.token = Some(0);
            }
            let Some(tok) = self.token.take() else {
                return;
            };
            if self.fired {
                return;
            }
            self.fired = true;
            ctx.work_done = 1;
            self.sums.lock()[self.id.patch.0 as usize] += tok + self.offset;
            if self.id.patch.0 + 1 < self.n {
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(self.id.patch.0 + 1), TaskTag(0)),
                    payload: Bytes::copy_from_slice(&(tok + 1).to_le_bytes()),
                });
            }
        }
        fn vote_to_halt(&self) -> bool {
            self.token.is_none()
        }
        fn remaining_work(&self) -> u64 {
            u64::from(!self.fired)
        }
        fn reset(&mut self, epoch: &crate::EpochInput) {
            let &offset = epoch.downcast_ref::<u64>().expect("ring epoch input");
            self.offset = offset;
            self.fired = false;
            self.token = None;
        }
    }

    struct RingFactory {
        n: u32,
        ranks: usize,
        sums: Arc<Mutex<Vec<u64>>>,
    }

    impl ProgramFactory for RingFactory {
        type Program = RingProgram;
        fn create(&self, id: ProgramId) -> RingProgram {
            RingProgram {
                id,
                n: self.n,
                offset: 0,
                token: None,
                fired: false,
                sums: self.sums.clone(),
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            (0..self.n)
                .filter(|p| (*p as usize) % self.ranks == rank)
                .map(|p| ProgramId::new(PatchId(p), TaskTag(0)))
                .collect()
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize % self.ranks
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    fn run_ring_epochs(n: u32, ranks: usize, term: TerminationKind, offsets: &[u64]) -> Vec<u64> {
        let sums = Arc::new(Mutex::new(vec![0u64; n as usize]));
        let factory = Arc::new(RingFactory {
            n,
            ranks,
            sums: sums.clone(),
        });
        let mut u = Universe::launch(
            ranks,
            factory,
            RuntimeConfig {
                num_workers: 2,
                termination: term,
                ..Default::default()
            },
        );
        assert_eq!(u.num_ranks(), ranks);
        for (k, &off) in offsets.iter().enumerate() {
            let stats = u.run_epoch(Arc::new(off));
            assert_eq!(stats.len(), ranks);
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, n as u64, "epoch {k} work accounting");
            // Per-epoch stream accounting: the token crosses n-1 hops,
            // every epoch, from a cold counter.
            let moved: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
            assert_eq!(moved, (n - 1) as u64, "epoch {k} stream accounting");
        }
        assert_eq!(u.epochs_run(), offsets.len() as u64);
        u.shutdown();
        let out = sums.lock().clone();
        out
    }

    #[test]
    fn resident_ring_runs_many_epochs_counting() {
        // First epoch: factory-fresh (offset 0); later epochs add
        // their downcast offset. Program k accumulates k per epoch
        // plus the epoch offsets of epochs 2..: check exact sums.
        let offsets = [0, 10, 100];
        let sums = run_ring_epochs(6, 2, TerminationKind::Counting, &offsets);
        for (k, &s) in sums.iter().enumerate() {
            let expect = 3 * k as u64 + offsets.iter().sum::<u64>();
            assert_eq!(s, expect, "program {k}");
        }
    }

    #[test]
    fn resident_ring_runs_many_epochs_safra() {
        let offsets = [0, 7];
        let sums = run_ring_epochs(5, 3, TerminationKind::Safra, &offsets);
        for (k, &s) in sums.iter().enumerate() {
            assert_eq!(s, 2 * k as u64 + 7, "program {k}");
        }
    }

    #[test]
    fn single_epoch_universe_matches_run_universe_semantics() {
        let sums = Arc::new(Mutex::new(vec![0u64; 4]));
        let factory = Arc::new(RingFactory {
            n: 4,
            ranks: 2,
            sums: sums.clone(),
        });
        let mut u = Universe::launch(2, factory, RuntimeConfig::default());
        let stats = u.run_epoch(Arc::new(()));
        drop(u); // shutdown via Drop
        let work: u64 = stats.iter().map(|s| s.work_done).sum();
        assert_eq!(work, 4);
        assert_eq!(sums.lock().clone(), vec![0, 1, 2, 3]);
    }

    /// A program that only materialises in epoch 2 (it is not listed by
    /// the factory; a listed program streams to it lazily) must be
    /// reset with the current epoch input right after creation.
    struct LazyTarget {
        armed: bool,
        got: Arc<Mutex<Vec<u64>>>,
    }

    struct LazySource {
        id: ProgramId,
        fire: bool,
        epoch: u64,
    }

    enum LazyProgram {
        Source(LazySource),
        Target(LazyTarget),
    }

    impl PatchProgram for LazyProgram {
        fn init(&mut self) {}
        fn input(&mut self, _src: ProgramId, payload: Bytes) {
            match self {
                LazyProgram::Target(t) => {
                    assert!(t.armed, "lazy program ran un-reset in a later epoch");
                    t.got
                        .lock()
                        .push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
                }
                LazyProgram::Source(_) => {}
            }
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if let LazyProgram::Source(s) = self {
                if s.fire {
                    s.fire = false;
                    ctx.work_done = 1;
                    // Only epoch 2 targets the hidden program.
                    if s.epoch == 1 {
                        ctx.send(Stream {
                            src: s.id,
                            dst: ProgramId::new(PatchId(99), TaskTag(0)),
                            payload: Bytes::copy_from_slice(&s.epoch.to_le_bytes()),
                        });
                    }
                }
            }
        }
        fn vote_to_halt(&self) -> bool {
            match self {
                LazyProgram::Source(s) => !s.fire,
                LazyProgram::Target(_) => true,
            }
        }
        fn remaining_work(&self) -> u64 {
            match self {
                LazyProgram::Source(s) => u64::from(s.fire),
                LazyProgram::Target(_) => 0,
            }
        }
        fn reset(&mut self, epoch: &crate::EpochInput) {
            let &e = epoch.downcast_ref::<u64>().expect("lazy epoch input");
            match self {
                LazyProgram::Source(s) => {
                    s.fire = true;
                    s.epoch = e;
                }
                LazyProgram::Target(t) => t.armed = true,
            }
        }
    }

    struct LazyFactory {
        got: Arc<Mutex<Vec<u64>>>,
    }

    impl ProgramFactory for LazyFactory {
        type Program = LazyProgram;
        fn create(&self, id: ProgramId) -> LazyProgram {
            if id.patch.0 == 99 {
                LazyProgram::Target(LazyTarget {
                    armed: false,
                    got: self.got.clone(),
                })
            } else {
                LazyProgram::Source(LazySource {
                    id,
                    fire: true,
                    epoch: 0,
                })
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            if rank == 0 {
                vec![ProgramId::new(PatchId(0), TaskTag(0))]
            } else {
                Vec::new()
            }
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            // The hidden target lives on rank 1.
            usize::from(id.patch.0 == 99)
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    /// Seconds of virtual kernel time the straggler books per epoch —
    /// a constant marker, so per-epoch attribution is exactly testable.
    const STRAGGLER_MARKER: f64 = 42.0;
    const STRAGGLER_SLEEP: std::time::Duration = std::time::Duration::from_millis(40);

    /// Two programs across two ranks engineered so counting
    /// termination is declared while a worker still runs a compute:
    /// P0 (rank 0) fires the token (its only committed work); P1
    /// (rank 1) consumes it, echoes a stream back, and defers its own
    /// work commitment by one claim cycle (a self-stream). The echo
    /// frame therefore leaves a full claim + report + counting round
    /// ahead of the report that completes the committed-work total, so
    /// P0's worker has reliably claimed the zero-work echo compute —
    /// which sleeps — by the time the epoch terminates around it. Its
    /// stat-only report can only reach the epoch through the
    /// end-of-epoch quiesce drain.
    struct EchoStraggler {
        id: ProgramId,
        fired: bool,
        consumed: bool,
        token_pending: bool,
        commit_pending: bool,
        echo_pending: bool,
    }

    impl PatchProgram for EchoStraggler {
        fn init(&mut self) {}
        fn input(&mut self, src: ProgramId, _payload: Bytes) {
            if self.id.patch.0 == 0 {
                self.echo_pending = true;
            } else if src == self.id {
                self.commit_pending = true;
            } else {
                self.token_pending = true;
            }
        }
        fn compute(&mut self, ctx: &mut ComputeCtx) {
            if self.id.patch.0 == 0 {
                if !self.fired {
                    self.fired = true;
                    ctx.work_done = 1;
                    ctx.send(Stream {
                        src: self.id,
                        dst: ProgramId::new(PatchId(1), TaskTag(0)),
                        payload: Bytes::new(),
                    });
                } else if self.echo_pending {
                    // The straggler: all committed work is already
                    // done. Hold the claim long enough that global
                    // termination beats this compute's report, and book
                    // a marker the epoch's stats must still contain.
                    self.echo_pending = false;
                    std::thread::sleep(STRAGGLER_SLEEP);
                    ctx.kernel_seconds = STRAGGLER_MARKER;
                }
            } else if self.token_pending {
                self.token_pending = false;
                ctx.send(Stream {
                    src: self.id,
                    dst: ProgramId::new(PatchId(0), TaskTag(0)),
                    payload: Bytes::new(),
                });
                ctx.send(Stream {
                    src: self.id,
                    dst: self.id,
                    payload: Bytes::new(),
                });
            } else if self.commit_pending {
                self.commit_pending = false;
                self.consumed = true;
                ctx.work_done = 1;
            }
        }
        fn vote_to_halt(&self) -> bool {
            if self.id.patch.0 == 0 {
                self.fired && !self.echo_pending
            } else {
                !self.token_pending && !self.commit_pending
            }
        }
        fn remaining_work(&self) -> u64 {
            if self.id.patch.0 == 0 {
                u64::from(!self.fired)
            } else {
                u64::from(!self.consumed)
            }
        }
        fn reset(&mut self, _epoch: &crate::EpochInput) {
            self.fired = false;
            self.consumed = false;
            self.token_pending = false;
            self.commit_pending = false;
            self.echo_pending = false;
        }
    }

    struct EchoFactory;

    impl ProgramFactory for EchoFactory {
        type Program = EchoStraggler;
        fn create(&self, id: ProgramId) -> EchoStraggler {
            EchoStraggler {
                id,
                fired: false,
                consumed: false,
                token_pending: false,
                commit_pending: false,
                echo_pending: false,
            }
        }
        fn programs_on_rank(&self, rank: usize) -> Vec<ProgramId> {
            vec![ProgramId::new(PatchId(rank as u32), TaskTag(0))]
        }
        fn rank_of(&self, id: ProgramId) -> usize {
            id.patch.0 as usize
        }
        fn priority(&self, _id: ProgramId) -> i64 {
            0
        }
        fn initial_workload(&self, _id: ProgramId) -> u64 {
            1
        }
    }

    /// Regression (this PR): per-epoch `RunStats` deltas must stay
    /// exact when an epoch terminates while its quiesce drain is still
    /// collecting a straggling compute — and the next epoch is
    /// submitted immediately after. The straggler's stat-only report
    /// (a `STRAGGLER_MARKER` of virtual kernel seconds) must land in
    /// the epoch that ran it, every epoch; any cross-epoch bleed shows
    /// up as a 0 / 2× marker split between adjacent epochs. This is
    /// exactly the race the quiesce drain's post-quiet sweep closes: a
    /// worker releases its held report after the channel send, so the
    /// final report can land just as the master observes quiet.
    #[test]
    fn quiesce_drain_keeps_straggler_stats_in_their_epoch() {
        let mut u = Universe::launch(
            2,
            Arc::new(EchoFactory),
            RuntimeConfig {
                num_workers: 2,
                termination: TerminationKind::Counting,
                ..Default::default()
            },
        );
        for epoch in 0..3 {
            let stats = u.run_epoch(Arc::new(()));
            let work: u64 = stats.iter().map(|s| s.work_done).sum();
            assert_eq!(work, 2, "epoch {epoch} work accounting");
            let moved: u64 = stats.iter().map(|s| s.streams_sent + s.streams_local).sum();
            assert_eq!(moved, 3, "epoch {epoch} stream accounting");
            // The marker is virtual time: booked exactly once per
            // epoch, by the straggler. The quiesce drain waits for
            // ready-but-unclaimed programs too (`active` covers them),
            // so the echo compute always runs inside its epoch — the
            // only way this assert fails is its report crossing the
            // fence.
            let kernel: f64 = stats
                .iter()
                .map(|s| s.workers_merged().get(crate::stats::Category::Kernel))
                .sum();
            assert_eq!(
                kernel, STRAGGLER_MARKER,
                "epoch {epoch}: straggler report bled across the fence"
            );
            // While the straggler slept, rank 0's other worker (or the
            // straggler's own earlier hand-off) sat in the drain tail:
            // the per-epoch drain stamps must see a tail of the same
            // order as the sleep.
            let max_drain = stats[0]
                .worker_drain_seconds
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            assert!(
                max_drain >= STRAGGLER_SLEEP.as_secs_f64() * 0.25,
                "epoch {epoch}: drain tail {max_drain}s lost the straggler window"
            );
        }
        u.shutdown();
    }

    /// Per-epoch worker-drain stamps on a plain 2-rank ring: every
    /// rank reports one entry per worker, bounded by the epoch wall,
    /// and the worker that carried the token drains for less than the
    /// whole epoch.
    #[test]
    fn worker_drain_stamps_cover_every_worker_each_epoch() {
        let sums = Arc::new(Mutex::new(vec![0u64; 6]));
        let factory = Arc::new(RingFactory {
            n: 6,
            ranks: 2,
            sums,
        });
        let mut u = Universe::launch(
            2,
            factory,
            RuntimeConfig {
                num_workers: 2,
                ..Default::default()
            },
        );
        for epoch in 0..3u64 {
            let stats = u.run_epoch(Arc::new(epoch));
            for s in &stats {
                assert_eq!(
                    s.worker_drain_seconds.len(),
                    2,
                    "rank {} epoch {epoch}: one stamp per worker",
                    s.rank
                );
                for &d in &s.worker_drain_seconds {
                    assert!(d.is_finite() && d >= 0.0);
                    assert!(
                        d <= s.wall_seconds,
                        "rank {} epoch {epoch}: drain {d}s exceeds wall {}s",
                        s.rank,
                        s.wall_seconds
                    );
                }
                // Both ranks hold ring programs, so some worker on each
                // rank acted this epoch and its tail is a strict
                // sub-interval of the epoch.
                let min = s
                    .worker_drain_seconds
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    min < s.wall_seconds,
                    "rank {} epoch {epoch}: no worker was ever active",
                    s.rank
                );
            }
        }
        u.shutdown();
    }

    #[test]
    fn lazily_created_program_is_reset_to_current_epoch() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let factory = Arc::new(LazyFactory { got: got.clone() });
        let mut u = Universe::launch(
            2,
            factory,
            RuntimeConfig {
                termination: TerminationKind::Safra,
                ..Default::default()
            },
        );
        u.run_epoch(Arc::new(0u64));
        u.run_epoch(Arc::new(1u64));
        u.shutdown();
        assert_eq!(got.lock().clone(), vec![1]);
    }
}
