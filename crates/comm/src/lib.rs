//! Simulated MPI substrate with pluggable transports.
//!
//! JSweep's runtime was built on MPI + threads on Tianhe-II. This crate
//! reproduces the slice of MPI semantics the runtime consumes — ranks
//! with asynchronous, per-pair-ordered point-to-point messages, plus a
//! few collectives and distributed termination detection — behind a
//! pluggable [`CommBackend`] transport seam:
//!
//! * [`Comm`] provides tagged `send` / `try_recv` / `recv_match`,
//!   collectives (`barrier`, `allreduce_*`) and epoch-boundary
//!   [`Comm::drain_user`] over any backend;
//! * [`backend`] defines the [`CommBackend`] trait and the default
//!   [`ThreadBackend`] (ranks as OS threads, crossbeam channels as the
//!   fabric — see DESIGN.md §2 for why this substitution preserves the
//!   behaviour under study);
//! * [`socket`] is the process-grade backend: ranks connected over
//!   UNIX-domain sockets, so a rank can be a separate OS process;
//! * [`Universe::run`] spawns `n` rank threads over the thread fabric,
//!   [`socket::SocketUniverse`] does the same over sockets;
//! * [`termination`] implements both termination detectors the paper
//!   supports (§IV-C): the general Dijkstra–Safra token protocol and
//!   the workload-counting shortcut for algorithms with known totals;
//! * [`pack`] is the byte-level stream codec (the pack/unpack cost that
//!   Fig. 16 profiles).
//!
//! Transport failure is a first-class outcome, not a panic: every
//! operation that touches the fabric returns `Result<_, `[`CommError`]`>`,
//! and the runtime maps a dead peer into its fault taxonomy (rank
//! death) so retry/relaunch machinery covers the transport too.

#![deny(missing_docs)]

pub mod backend;
pub mod pack;
pub mod socket;
pub mod termination;

pub use backend::{CommBackend, CommError, ThreadBackend};

use bytes::Bytes;
use std::collections::VecDeque;

/// Tags at or above this value are reserved for the substrate
/// (collectives, termination). User code must stay below.
pub const RESERVED_TAG_BASE: u32 = u32::MAX - 16;
/// Collective phase tag (barrier / reductions).
pub const TAG_COLLECTIVE: u32 = RESERVED_TAG_BASE;
/// Dijkstra–Safra token.
pub const TAG_TOKEN: u32 = RESERVED_TAG_BASE + 1;
/// Global termination announcement.
pub const TAG_TERMINATE: u32 = RESERVED_TAG_BASE + 2;
/// "This rank finished its known workload" report (counting detector).
pub const TAG_LOCAL_DONE: u32 = RESERVED_TAG_BASE + 3;

/// Which transport fabric connects the ranks of a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Ranks as threads in one address space, crossbeam channels as the
    /// wire ([`ThreadBackend`]). The fast default.
    #[default]
    Thread,
    /// Ranks connected over UNIX-domain sockets
    /// ([`socket::SocketBackend`]); ranks may live in separate
    /// processes.
    Socket,
}

/// A received message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User or reserved tag.
    pub tag: u32,
    /// Opaque payload (see [`pack`]).
    pub payload: Bytes,
}

/// One rank's endpoint of the communicator.
///
/// Owns a boxed [`CommBackend`] for raw tagged delivery plus the
/// transport-independent machinery every backend shares: the stash of
/// messages set aside by [`Comm::recv_match`], the collectives, and the
/// epoch-boundary [`Comm::drain_user`] sweep.
pub struct Comm {
    backend: Box<dyn CommBackend>,
    /// Messages received while waiting for a specific tag.
    stash: VecDeque<Message>,
}

impl Comm {
    /// Wrap a transport endpoint into a full communicator.
    pub fn from_backend(backend: Box<dyn CommBackend>) -> Comm {
        Comm {
            backend,
            stash: VecDeque::new(),
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.backend.rank()
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.backend.size()
    }

    /// Payload bytes this endpoint has pushed into the fabric.
    pub fn bytes_sent(&self) -> u64 {
        self.backend.bytes_sent()
    }

    /// Payload bytes this endpoint has received from the fabric — the
    /// receive-side mirror of [`Comm::bytes_sent`].
    pub fn bytes_received(&self) -> u64 {
        self.backend.bytes_received()
    }

    /// Messages this endpoint has pushed into the fabric.
    pub fn frames_sent(&self) -> u64 {
        self.backend.frames_sent()
    }

    /// Messages this endpoint has received from the fabric.
    pub fn frames_received(&self) -> u64 {
        self.backend.frames_received()
    }

    /// Asynchronous tagged send. Sending to self is allowed (the message
    /// is delivered through the same receive path as remote ones).
    /// Fails if the destination is dead instead of unwinding the caller.
    pub fn send(&self, to: usize, tag: u32, payload: Bytes) -> Result<(), CommError> {
        self.backend.send(to, tag, payload)
    }

    /// Non-blocking receive of the next message of *any* tag, checking
    /// the stash first. `Ok(None)` means "nothing available right now";
    /// an error means a peer died (delivered only after everything it
    /// managed to send has been drained).
    pub fn try_recv(&mut self) -> Result<Option<Message>, CommError> {
        if let Some(m) = self.stash.pop_front() {
            return Ok(Some(m));
        }
        self.backend.try_recv()
    }

    /// Blocking receive of any message.
    pub fn recv(&mut self) -> Result<Message, CommError> {
        if let Some(m) = self.stash.pop_front() {
            return Ok(m);
        }
        self.backend.recv()
    }

    /// Blocking receive of the next message with the given tag;
    /// other messages are stashed (and later returned by
    /// `try_recv`/`recv` in arrival order).
    pub fn recv_match(&mut self, tag: u32) -> Result<Message, CommError> {
        // Check the stash first.
        if let Some(pos) = self.stash.iter().position(|m| m.tag == tag) {
            return Ok(self.stash.remove(pos).unwrap());
        }
        loop {
            let m = self.backend.recv()?;
            if m.tag == tag {
                return Ok(m);
            }
            self.stash.push_back(m);
        }
    }

    /// Discard every currently queued or stashed **user** message
    /// (tag below [`RESERVED_TAG_BASE`]), preserving reserved-tag
    /// protocol messages in arrival order. Returns the number of user
    /// messages dropped.
    ///
    /// This is the epoch-boundary cleanup of a persistent runtime:
    /// after global termination, anything user-tagged still queued is
    /// residue of the finished epoch, while reserved traffic (e.g. a
    /// peer's barrier message for the *next* synchronisation) must
    /// survive the sweep.
    pub fn drain_user(&mut self) -> Result<usize, CommError> {
        let mut kept = VecDeque::new();
        let mut dropped = 0;
        loop {
            let m = match self.try_recv() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                Err(e) => {
                    // Keep what we already sorted, then report the death.
                    self.stash = kept;
                    return Err(e);
                }
            };
            if m.tag >= RESERVED_TAG_BASE {
                kept.push_back(m);
            } else {
                dropped += 1;
            }
        }
        // `try_recv` drained the stash first, so it is empty now.
        self.stash = kept;
        Ok(dropped)
    }

    /// Synchronise all ranks. Must be called collectively; no other
    /// collective may be in flight concurrently.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        if self.rank() == 0 {
            for _ in 1..self.size() {
                let _ = self.recv_match(TAG_COLLECTIVE)?;
            }
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, Bytes::new())?;
            }
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::new())?;
            let _ = self.recv_match(TAG_COLLECTIVE)?;
        }
        Ok(())
    }

    /// Sum an `f64` across all ranks (collective).
    pub fn allreduce_sum_f64(&mut self, x: f64) -> Result<f64, CommError> {
        self.allreduce_f64(x, |a, b| a + b)
    }

    /// Maximum of an `f64` across all ranks (collective).
    pub fn allreduce_max_f64(&mut self, x: f64) -> Result<f64, CommError> {
        self.allreduce_f64(x, f64::max)
    }

    /// Sum a `u64` across all ranks (collective).
    pub fn allreduce_sum_u64(&mut self, x: u64) -> Result<u64, CommError> {
        let v = self.allreduce_f64(x as f64, |a, b| a + b)?;
        Ok(v.round() as u64)
    }

    fn allreduce_f64(&mut self, x: f64, op: impl Fn(f64, f64) -> f64) -> Result<f64, CommError> {
        if self.rank() == 0 {
            let mut acc = x;
            for _ in 1..self.size() {
                let m = self.recv_match(TAG_COLLECTIVE)?;
                acc = op(acc, f64::from_le_bytes(m.payload[..8].try_into().unwrap()));
            }
            let out = Bytes::copy_from_slice(&acc.to_le_bytes());
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, out.clone())?;
            }
            Ok(acc)
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::copy_from_slice(&x.to_le_bytes()))?;
            let m = self.recv_match(TAG_COLLECTIVE)?;
            Ok(f64::from_le_bytes(m.payload[..8].try_into().unwrap()))
        }
    }

    /// Elementwise sum of an `f64` slice across all ranks (collective),
    /// in place. Rank 0 accumulates contributions **in rank order**
    /// (deterministic, bit-exact regardless of arrival order) and
    /// broadcasts the result.
    ///
    /// This is the SPMD flux reduction: each rank deposits only its own
    /// patches' cells (disjoint supports, zeros elsewhere), and the
    /// reduction assembles the full field identically on every rank.
    pub fn allreduce_sum_f64_slice(&mut self, xs: &mut [f64]) -> Result<(), CommError> {
        if self.size() == 1 {
            return Ok(());
        }
        if self.rank() == 0 {
            let mut parts: Vec<Option<Bytes>> = vec![None; self.size()];
            for _ in 1..self.size() {
                let m = self.recv_match(TAG_COLLECTIVE)?;
                parts[m.src] = Some(m.payload);
            }
            for part in parts.into_iter().flatten() {
                assert_eq!(part.len(), xs.len() * 8, "allreduce slice length mismatch");
                for (x, c) in xs.iter_mut().zip(part.chunks_exact(8)) {
                    *x += f64::from_le_bytes(c.try_into().unwrap());
                }
            }
            let mut buf = Vec::with_capacity(xs.len() * 8);
            for x in xs.iter() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            let payload = Bytes::from(buf);
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, payload.clone())?;
            }
        } else {
            let mut buf = Vec::with_capacity(xs.len() * 8);
            for x in xs.iter() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            self.send(0, TAG_COLLECTIVE, Bytes::from(buf))?;
            let m = self.recv_match(TAG_COLLECTIVE)?;
            assert_eq!(
                m.payload.len(),
                xs.len() * 8,
                "allreduce slice length mismatch"
            );
            for (x, c) in xs.iter_mut().zip(m.payload.chunks_exact(8)) {
                *x = f64::from_le_bytes(c.try_into().unwrap());
            }
        }
        Ok(())
    }

    /// Gather each rank's `u64` on every rank (collective).
    pub fn allgather_u64(&mut self, x: u64) -> Result<Vec<u64>, CommError> {
        if self.rank() == 0 {
            let mut all = vec![0u64; self.size()];
            all[0] = x;
            for _ in 1..self.size() {
                let m = self.recv_match(TAG_COLLECTIVE)?;
                all[m.src] = u64::from_le_bytes(m.payload[..8].try_into().unwrap());
            }
            let mut buf = Vec::with_capacity(8 * self.size());
            for v in &all {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            let payload = Bytes::from(buf);
            for r in 1..self.size() {
                self.send(r, TAG_COLLECTIVE, payload.clone())?;
            }
            Ok(all)
        } else {
            self.send(0, TAG_COLLECTIVE, Bytes::copy_from_slice(&x.to_le_bytes()))?;
            let m = self.recv_match(TAG_COLLECTIVE)?;
            Ok(m.payload
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
    }

    /// Gracefully tear down the endpoint: peers will see the following
    /// silence as intentional rather than a death. Idempotent.
    pub fn close(&mut self) {
        self.backend.close();
    }
}

/// The simulated "MPI world" over the thread fabric: spawns rank
/// threads and joins them.
pub struct Universe;

impl Universe {
    /// Create the `n` connected [`Comm`] endpoints of a simulated MPI
    /// world without running anything, in rank order.
    ///
    /// This is the substrate of long-lived (resident) runtimes: the
    /// caller owns the rank threads and their lifetimes, while
    /// [`Universe::run`] remains the one-shot spawn-and-join wrapper.
    pub fn endpoints(n: usize) -> Vec<Comm> {
        ThreadBackend::endpoints(n)
            .into_iter()
            .map(|b| Comm::from_backend(Box::new(b)))
            .collect()
    }

    /// Run `f` on `n` rank threads; returns each rank's result in rank
    /// order. Panics in any rank propagate.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(Comm) -> R + Send + Sync + 'static,
    {
        let f = std::sync::Arc::new(f);
        let mut handles = Vec::with_capacity(n);
        for comm in Universe::endpoints(n) {
            let rank = comm.rank();
            let f = f.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || f(comm))
                    .expect("spawn rank thread"),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Universe::run(4, |mut comm| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 7, Bytes::copy_from_slice(&[comm.rank() as u8]))
                .unwrap();
            let m = comm.recv_match(7).unwrap();
            (m.src, m.payload[0])
        });
        for (rank, (src, byte)) in results.into_iter().enumerate() {
            assert_eq!(src, (rank + 3) % 4);
            assert_eq!(byte as usize, src);
        }
    }

    #[test]
    fn single_rank_universe() {
        let r = Universe::run(1, |mut comm| {
            comm.barrier().unwrap();
            comm.allreduce_sum_f64(2.5).unwrap()
        });
        assert_eq!(r, vec![2.5]);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BEFORE: AtomicUsize = AtomicUsize::new(0);
        let _ = Universe::run(4, |mut comm| {
            BEFORE.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            assert_eq!(BEFORE.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_sum_and_max() {
        let results = Universe::run(3, |mut comm| {
            let s = comm.allreduce_sum_f64(comm.rank() as f64 + 1.0).unwrap();
            let m = comm.allreduce_max_f64(comm.rank() as f64).unwrap();
            (s, m)
        });
        for (s, m) in results {
            assert_eq!(s, 6.0);
            assert_eq!(m, 2.0);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let results = Universe::run(3, |mut comm| {
            comm.allgather_u64(comm.rank() as u64 * 10).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn allreduce_slice_sums_disjoint_supports() {
        let results = Universe::run(3, |mut comm| {
            // Each rank deposits into its own third of the field.
            let mut xs = vec![0.0f64; 6];
            xs[comm.rank() * 2] = comm.rank() as f64 + 1.0;
            xs[comm.rank() * 2 + 1] = 10.0 * (comm.rank() as f64 + 1.0);
            comm.allreduce_sum_f64_slice(&mut xs).unwrap();
            xs
        });
        for xs in results {
            assert_eq!(xs, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        }
    }

    #[test]
    fn recv_match_stashes_other_tags() {
        let r = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, Bytes::copy_from_slice(b"first")).unwrap();
                comm.send(1, 2, Bytes::copy_from_slice(b"second")).unwrap();
                0
            } else {
                // Wait for tag 2 first; tag 1 must be stashed, not lost.
                let m2 = comm.recv_match(2).unwrap();
                assert_eq!(&m2.payload[..], b"second");
                let m1 = comm.try_recv().unwrap().expect("stashed message lost");
                assert_eq!(m1.tag, 1);
                assert_eq!(&m1.payload[..], b"first");
                1
            }
        });
        assert_eq!(r, vec![0, 1]);
    }

    #[test]
    fn self_send_is_delivered() {
        let r = Universe::run(1, |mut comm| {
            comm.send(0, 9, Bytes::copy_from_slice(b"me")).unwrap();
            comm.recv_match(9).unwrap().payload
        });
        assert_eq!(&r[0][..], b"me");
    }

    #[test]
    fn blocking_recv_returns_stashed_first() {
        let r = Universe::run(1, |mut comm| {
            comm.send(0, 3, Bytes::copy_from_slice(b"a")).unwrap();
            comm.send(0, 4, Bytes::copy_from_slice(b"b")).unwrap();
            // Match tag 4 first, stashing tag 3; blocking recv must then
            // return the stashed message before any new one.
            let _ = comm.recv_match(4).unwrap();
            let m = comm.recv().unwrap();
            m.tag
        });
        assert_eq!(r, vec![3]);
    }

    #[test]
    fn allreduce_max_with_negatives() {
        let results = Universe::run(3, |mut comm| {
            comm.allreduce_max_f64(-(comm.rank() as f64) - 1.0).unwrap()
        });
        for m in results {
            assert_eq!(m, -1.0);
        }
    }

    #[test]
    fn allgather_single_rank() {
        let r = Universe::run(1, |mut comm| comm.allgather_u64(17).unwrap());
        assert_eq!(r, vec![vec![17]]);
    }

    #[test]
    fn per_pair_ordering_preserved() {
        let r = Universe::run(2, |mut comm| {
            if comm.rank() == 0 {
                for i in 0..100u32 {
                    comm.send(1, 5, Bytes::copy_from_slice(&i.to_le_bytes()))
                        .unwrap();
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| {
                        let m = comm.recv_match(5).unwrap();
                        u32::from_le_bytes(m.payload[..4].try_into().unwrap())
                    })
                    .collect()
            }
        });
        assert_eq!(r[1], (0..100).collect::<Vec<u32>>());
    }
}
