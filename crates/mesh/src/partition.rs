//! Domain decomposition: cells → patches → ranks.
//!
//! Mirrors the paper's §V-A: "the mesh has been decomposed into patches
//! with general spatial domain decomposition methods (METIS and Chaco
//! for unstructured meshes, Morton and Hilbert space filling curves for
//! structured meshes)". We provide:
//!
//! * [`structured_blocks`] — fixed-size block patches on structured
//!   meshes (the paper's `patch size = 20×20×20`);
//! * [`greedy_bfs`] — a BFS-growing graph partitioner for unstructured
//!   meshes (METIS stand-in: contiguous, balanced parts with small
//!   boundary);
//! * [`rcb`] — recursive coordinate bisection over cell centroids
//!   (Chaco-style geometric partitioner);
//! * rank distribution along Morton/Hilbert orders via
//!   [`distribute_sfc`].

use crate::patch::PatchSet;
use crate::sfc;
use crate::structured::StructuredMesh;
use crate::SweepTopology;
use std::collections::VecDeque;

/// Space-filling-curve family used for rank distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfcKind {
    /// Morton (Z-order) curve: cheap bit interleaving, moderate locality.
    Morton,
    /// Hilbert curve: better locality, slightly costlier indexing.
    Hilbert,
}

/// Decompose a structured mesh into axis-aligned blocks of
/// `patch_dims = (px, py, pz)` cells (boundary blocks may be smaller).
///
/// Returns the patch set plus the patch-lattice coordinate of every
/// patch (for SFC ordering).
pub fn structured_blocks(
    mesh: &StructuredMesh,
    patch_dims: (usize, usize, usize),
) -> (PatchSet, Vec<(u32, u32, u32)>) {
    let (nx, ny, nz) = mesh.dims();
    let (px, py, pz) = patch_dims;
    assert!(px > 0 && py > 0 && pz > 0, "zero patch dims");
    let bx = nx.div_ceil(px);
    let by = ny.div_ceil(py);
    let bz = nz.div_ceil(pz);
    let num_patches = bx * by * bz;
    let mut patch_of = vec![0u32; mesh.num_cells()];
    for (c, slot) in patch_of.iter_mut().enumerate() {
        let (i, j, k) = mesh.cell_ijk(c);
        let b = (i / px) + bx * ((j / py) + by * (k / pz));
        *slot = b as u32;
    }
    let coords: Vec<(u32, u32, u32)> = (0..num_patches)
        .map(|b| {
            (
                (b % bx) as u32,
                ((b / bx) % by) as u32,
                (b / (bx * by)) as u32,
            )
        })
        .collect();
    (PatchSet::from_assignment(patch_of, num_patches), coords)
}

/// Distribute the patches of a structured decomposition over ranks
/// along a space-filling curve of the patch lattice.
pub fn distribute_sfc(
    patches: &mut PatchSet,
    coords: &[(u32, u32, u32)],
    num_ranks: usize,
    kind: SfcKind,
) {
    let order = match kind {
        SfcKind::Morton => sfc::morton_order(coords),
        SfcKind::Hilbert => sfc::hilbert_order(coords),
    };
    patches.distribute_in_order(&order, num_ranks);
}

/// BFS-growing graph partitioner (METIS stand-in).
///
/// Repeatedly grows a patch from the unassigned cell with the fewest
/// unassigned neighbours (a peripheral cell), adding BFS frontier cells
/// until `target` cells are collected. Produces contiguous patches with
/// balanced sizes (the last patch absorbs the remainder; isolated
/// leftovers join their neighbouring patch).
pub fn greedy_bfs<T: SweepTopology + ?Sized>(mesh: &T, target: usize) -> PatchSet {
    assert!(target > 0, "zero target patch size");
    let n = mesh.num_cells();
    let mut patch_of = vec![u32::MAX; n];
    let mut num_patches = 0u32;
    let mut assigned = 0usize;

    // Seed order: sort cells by centroid along a diagonal so the growth
    // front marches through the domain deterministically.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by(|&a, &b| {
        let ca = mesh.cell_centroid(a);
        let cb = mesh.cell_centroid(b);
        let ka = ca[0] + ca[1] * 1.37 + ca[2] * 1.93;
        let kb = cb[0] + cb[1] * 1.37 + cb[2] * 1.93;
        ka.partial_cmp(&kb).unwrap().then(a.cmp(&b))
    });
    let mut seed_cursor = 0usize;

    while assigned < n {
        // Next unassigned seed.
        while seed_cursor < n && patch_of[seeds[seed_cursor]] != u32::MAX {
            seed_cursor += 1;
        }
        let seed = seeds[seed_cursor];
        let p = num_patches;
        num_patches += 1;
        let mut queue = VecDeque::new();
        queue.push_back(seed);
        patch_of[seed] = p;
        assigned += 1;
        let mut size = 1usize;
        while size < target {
            let Some(c) = queue.pop_front() else { break };
            for nb in mesh.neighbors(c) {
                if patch_of[nb] == u32::MAX {
                    patch_of[nb] = p;
                    assigned += 1;
                    size += 1;
                    queue.push_back(nb);
                    if size >= target {
                        break;
                    }
                }
            }
        }
    }

    // Merge undersized fragments (< target/4) into a neighbouring patch
    // to avoid pathological tiny patches at the domain boundary.
    let mut sizes = vec![0usize; num_patches as usize];
    for &p in &patch_of {
        sizes[p as usize] += 1;
    }
    for c in 0..n {
        let p = patch_of[c] as usize;
        if sizes[p] * 4 < target {
            if let Some(nb) = mesh
                .neighbors(c)
                .into_iter()
                .find(|&nb| sizes[patch_of[nb] as usize] * 4 >= target)
            {
                sizes[p] -= 1;
                patch_of[c] = patch_of[nb];
                sizes[patch_of[nb] as usize] += 1;
            }
        }
    }
    compact(patch_of)
}

/// Recursive coordinate bisection over cell centroids into
/// `num_patches` parts (must not exceed the cell count).
pub fn rcb<T: SweepTopology + ?Sized>(mesh: &T, num_patches: usize) -> PatchSet {
    let n = mesh.num_cells();
    assert!(num_patches >= 1 && num_patches <= n);
    let centroids: Vec<[f64; 3]> = (0..n).map(|c| mesh.cell_centroid(c)).collect();
    let mut patch_of = vec![0u32; n];
    let mut cells: Vec<usize> = (0..n).collect();
    let mut next_patch = 0u32;
    rcb_rec(
        &centroids,
        &mut cells,
        num_patches,
        &mut patch_of,
        &mut next_patch,
    );
    PatchSet::from_assignment(patch_of, num_patches)
}

fn rcb_rec(
    centroids: &[[f64; 3]],
    cells: &mut [usize],
    parts: usize,
    patch_of: &mut [u32],
    next_patch: &mut u32,
) {
    if parts == 1 {
        let p = *next_patch;
        *next_patch += 1;
        for &c in cells.iter() {
            patch_of[c] = p;
        }
        return;
    }
    // Split along the widest axis.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &c in cells.iter() {
        for ax in 0..3 {
            lo[ax] = lo[ax].min(centroids[c][ax]);
            hi[ax] = hi[ax].max(centroids[c][ax]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();
    let left_parts = parts / 2;
    let split = cells.len() * left_parts / parts;
    cells.select_nth_unstable_by(split.max(1) - 1, |&a, &b| {
        centroids[a][axis]
            .partial_cmp(&centroids[b][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let (left, right) = cells.split_at_mut(split.max(1));
    rcb_rec(centroids, left, left_parts.max(1), patch_of, next_patch);
    rcb_rec(
        centroids,
        right,
        parts - left_parts.max(1),
        patch_of,
        next_patch,
    );
}

/// Renumber patch ids to remove gaps left by merging, then build the set.
fn compact(mut patch_of: Vec<u32>) -> PatchSet {
    let max = *patch_of.iter().max().unwrap() as usize + 1;
    let mut used = vec![false; max];
    for &p in &patch_of {
        used[p as usize] = true;
    }
    let mut remap = vec![u32::MAX; max];
    let mut next = 0u32;
    for (old, &u) in used.iter().enumerate() {
        if u {
            remap[old] = next;
            next += 1;
        }
    }
    for p in patch_of.iter_mut() {
        *p = remap[*p as usize];
    }
    PatchSet::from_assignment(patch_of, next as usize)
}

/// Distribute the patches of an unstructured decomposition over ranks,
/// ordering patches by centroid along a diagonal sweep (contiguous
/// runs → compact rank subdomains).
pub fn distribute_unstructured<T: SweepTopology + ?Sized>(
    patches: &mut PatchSet,
    mesh: &T,
    num_ranks: usize,
) {
    let mut keys: Vec<(f64, usize)> = patches
        .patches()
        .map(|p| {
            let cells = patches.cells(p);
            let mut acc = [0.0; 3];
            for &c in cells {
                let cc = mesh.cell_centroid(c as usize);
                for ax in 0..3 {
                    acc[ax] += cc[ax];
                }
            }
            let k = (acc[0] + 1.37 * acc[1] + 1.93 * acc[2]) / cells.len() as f64;
            (k, p.index())
        })
        .collect();
    keys.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let order: Vec<usize> = keys.into_iter().map(|(_, p)| p).collect();
    patches.distribute_in_order(&order, num_ranks);
}

/// Convenience: block-decompose a structured mesh and distribute over
/// ranks along a Hilbert curve.
pub fn decompose_structured(
    mesh: &StructuredMesh,
    patch_dims: (usize, usize, usize),
    num_ranks: usize,
) -> PatchSet {
    let (mut ps, coords) = structured_blocks(mesh, patch_dims);
    distribute_sfc(&mut ps, &coords, num_ranks, SfcKind::Hilbert);
    ps
}

/// Convenience: BFS-partition an unstructured mesh into patches of
/// roughly `cells_per_patch` cells and distribute over ranks.
pub fn decompose_unstructured<T: SweepTopology + ?Sized>(
    mesh: &T,
    cells_per_patch: usize,
    num_ranks: usize,
) -> PatchSet {
    let mut ps = greedy_bfs(mesh, cells_per_patch);
    distribute_unstructured(&mut ps, mesh, num_ranks);
    ps
}

/// Check contiguity of every patch (each patch's cells form one
/// face-connected component). Returns the number of non-contiguous
/// patches.
pub fn count_fragmented_patches<T: SweepTopology + ?Sized>(ps: &PatchSet, mesh: &T) -> usize {
    let mut fragmented = 0;
    for p in ps.patches() {
        let cells = ps.cells(p);
        let mut visited = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(cells[0] as usize);
        visited.insert(cells[0] as usize);
        while let Some(c) = queue.pop_front() {
            for nb in mesh.neighbors(c) {
                if ps.patch_of(nb) == p && visited.insert(nb) {
                    queue.push_back(nb);
                }
            }
        }
        if visited.len() != cells.len() {
            fragmented += 1;
        }
    }
    fragmented
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetgen;

    #[test]
    fn blocks_cover_and_size() {
        let m = StructuredMesh::unit(10, 10, 10);
        let (ps, coords) = structured_blocks(&m, (5, 5, 5));
        assert_eq!(ps.num_patches(), 8);
        assert_eq!(coords.len(), 8);
        for p in ps.patches() {
            assert_eq!(ps.cells(p).len(), 125);
        }
    }

    #[test]
    fn uneven_blocks_cover_all_cells() {
        let m = StructuredMesh::unit(7, 5, 3);
        let (ps, _) = structured_blocks(&m, (4, 4, 4));
        let total: usize = ps.patches().map(|p| ps.cells(p).len()).sum();
        assert_eq!(total, 105);
    }

    #[test]
    fn blocks_are_contiguous() {
        let m = StructuredMesh::unit(8, 8, 4);
        let (ps, _) = structured_blocks(&m, (4, 4, 4));
        assert_eq!(count_fragmented_patches(&ps, &m), 0);
    }

    #[test]
    fn sfc_distribution_balances() {
        let m = StructuredMesh::unit(8, 8, 8);
        let (mut ps, coords) = structured_blocks(&m, (2, 2, 2));
        distribute_sfc(&mut ps, &coords, 4, SfcKind::Hilbert);
        for r in 0..4 {
            let cells: usize = ps
                .patches_on_rank(r)
                .iter()
                .map(|&p| ps.cells(p).len())
                .sum();
            assert_eq!(cells, 128, "rank {r}");
        }
    }

    #[test]
    fn greedy_bfs_covers_and_balances() {
        let m = tetgen::cube(4, 1.0);
        let ps = greedy_bfs(&m, 48);
        let total: usize = ps.patches().map(|p| ps.cells(p).len()).sum();
        assert_eq!(total, m.num_cells());
        for p in ps.patches() {
            let s = ps.cells(p).len();
            assert!(s <= 2 * 48, "patch {p:?} oversized: {s}");
        }
    }

    #[test]
    fn greedy_bfs_patches_mostly_contiguous() {
        let m = tetgen::ball(5, 1.0);
        let ps = greedy_bfs(&m, 64);
        // BFS growth makes patches contiguous by construction; merging
        // fragments can break at most a few.
        let frag = count_fragmented_patches(&ps, &m);
        assert!(
            frag * 10 <= ps.num_patches(),
            "{frag}/{} fragmented",
            ps.num_patches()
        );
    }

    #[test]
    fn rcb_produces_exact_part_count() {
        let m = tetgen::cube(3, 1.0);
        for parts in [1, 2, 3, 5, 8] {
            let ps = rcb(&m, parts);
            assert_eq!(ps.num_patches(), parts);
            let total: usize = ps.patches().map(|p| ps.cells(p).len()).sum();
            assert_eq!(total, m.num_cells());
        }
    }

    #[test]
    fn rcb_balances_within_factor_two() {
        let m = tetgen::cube(4, 1.0);
        let ps = rcb(&m, 8);
        let sizes: Vec<usize> = ps.patches().map(|p| ps.cells(p).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 2 * min, "sizes {sizes:?}");
    }

    #[test]
    fn decompose_unstructured_end_to_end() {
        let m = tetgen::ball(4, 1.0);
        let ps = decompose_unstructured(&m, 40, 3);
        assert_eq!(ps.num_ranks(), 3);
        for r in 0..3 {
            assert!(!ps.patches_on_rank(r).is_empty());
        }
    }

    #[test]
    fn decompose_structured_end_to_end() {
        let m = StructuredMesh::unit(8, 8, 8);
        let ps = decompose_structured(&m, (4, 4, 4), 2);
        assert_eq!(ps.num_patches(), 8);
        assert_eq!(ps.num_ranks(), 2);
    }
}
