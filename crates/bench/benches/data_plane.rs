//! Data-plane microbenchmarks: pool contention (sharded,
//! batch-delivery pool vs the pre-PR single-mutex pool) and the
//! frame codec (aggregated multi-stream frames vs one message per
//! stream).
//!
//! Besides the usual timing printout, this bench writes a machine-
//! readable baseline to `BENCH_data_plane.json` at the workspace root
//! so perf regressions are visible across PRs. `cargo bench -- --test`
//! runs everything in quick smoke mode.

use criterion::{black_box, Criterion};
use jsweep_core::pool::Pool;
use jsweep_core::program::{pack_frame, pack_stream, unpack_frame, unpack_stream};
use jsweep_core::{Breakdown, PatchProgram, ProgramId, Stream, TaskTag};
use jsweep_mesh::PatchId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

struct Nop;
impl PatchProgram for Nop {
    fn init(&mut self) {}
    fn input(&mut self, _src: ProgramId, _payload: Bytes) {}
    fn compute(&mut self, _ctx: &mut jsweep_core::ComputeCtx) {}
    fn vote_to_halt(&self) -> bool {
        true
    }
    fn remaining_work(&self) -> u64 {
        0
    }
}

/// The pre-PR pool, kept verbatim as the contention baseline: one
/// global `Mutex<BinaryHeap>` ready queue, one lock round-trip per
/// delivered stream.
mod single_mutex {
    use super::Nop;
    use bytes::Bytes;
    use jsweep_core::{PatchProgram, ProgramId, Stream};
    use parking_lot::{Condvar, Mutex};
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};

    #[derive(PartialEq, Eq, Clone, Copy)]
    enum SlotState {
        Idle,
        Ready,
        Running,
    }

    struct Slot {
        state: SlotState,
        pending: Vec<(ProgramId, Bytes)>,
        program: Option<Box<dyn PatchProgram>>,
        priority: i64,
    }

    pub struct Claim {
        pub id: ProgramId,
        pub pending: Vec<(ProgramId, Bytes)>,
    }

    struct Inner {
        slots: HashMap<ProgramId, Slot>,
        ready: BinaryHeap<(i64, Reverse<ProgramId>)>,
        stop: bool,
    }

    pub struct SingleMutexPool {
        inner: Mutex<Inner>,
        cv: Condvar,
    }

    impl SingleMutexPool {
        pub fn new() -> SingleMutexPool {
            SingleMutexPool {
                inner: Mutex::new(Inner {
                    slots: HashMap::new(),
                    ready: BinaryHeap::new(),
                    stop: false,
                }),
                cv: Condvar::new(),
            }
        }

        pub fn deliver(&self, stream: Stream, priority: i64) {
            let mut g = self.inner.lock();
            let slot = g.slots.entry(stream.dst).or_insert(Slot {
                state: SlotState::Idle,
                pending: Vec::new(),
                program: None,
                priority,
            });
            slot.pending.push((stream.src, stream.payload));
            if slot.state == SlotState::Idle {
                slot.state = SlotState::Ready;
                let prio = slot.priority;
                g.ready.push((prio, Reverse(stream.dst)));
                drop(g);
                self.cv.notify_one();
            }
        }

        pub fn take(&self) -> Option<Claim> {
            let mut g = self.inner.lock();
            loop {
                if let Some((_, Reverse(id))) = g.ready.pop() {
                    let slot = g.slots.get_mut(&id).unwrap();
                    slot.state = SlotState::Running;
                    return Some(Claim {
                        id,
                        pending: std::mem::take(&mut slot.pending),
                    });
                }
                if g.stop {
                    return None;
                }
                self.cv.wait(&mut g);
            }
        }

        pub fn finish(&self, id: ProgramId, halted: bool) {
            let mut g = self.inner.lock();
            let slot = g.slots.get_mut(&id).unwrap();
            slot.program = Some(Box::new(Nop));
            if !halted || !slot.pending.is_empty() {
                slot.state = SlotState::Ready;
                let prio = slot.priority;
                g.ready.push((prio, Reverse(id)));
                drop(g);
                self.cv.notify_one();
            } else {
                slot.state = SlotState::Idle;
            }
        }

        pub fn stop(&self) {
            self.inner.lock().stop = true;
            self.cv.notify_all();
        }
    }
}

/// Max streams in flight between producers and workers (flow
/// control, mirroring the engine's bounded drain rounds).
const FLOW_WINDOW: u64 = 512;

fn mk_stream(tag: u64, programs: u32, payload: &Bytes) -> (Stream, i64) {
    (
        Stream {
            src: ProgramId::new(PatchId(u32::MAX), TaskTag(0)),
            dst: ProgramId::new(PatchId((tag % u64::from(programs)) as u32), TaskTag(0)),
            // One shared allocation: cheap-clone handles, so the bench
            // times pool operations rather than allocator traffic.
            payload: payload.clone(),
        },
        (tag % 7) as i64,
    )
}

struct ContentionScenario {
    workers: usize,
    producers: usize,
    programs: u32,
    batch: usize,
    batches: usize,
}

impl ContentionScenario {
    fn total(&self) -> u64 {
        (self.producers * self.batch * self.batches) as u64
    }

    /// One disjoint batch sequence per producer thread.
    fn producer_batches(&self, p: usize) -> Vec<Vec<(Stream, i64)>> {
        let base = p * self.batches * self.batch;
        let payload = Bytes::from(vec![0u8; 8]);
        (0..self.batches)
            .map(|b| {
                (0..self.batch)
                    .map(|k| mk_stream((base + b * self.batch + k) as u64, self.programs, &payload))
                    .collect()
            })
            .collect()
    }
}

/// Drive the sharded pool: `producers` deliverer threads (the master
/// role) delivering whole batches + `workers` takers racing
/// take/finish. A first untimed pass registers every program (§III-A
/// startup) so the timed pass measures steady-state scatter delivery.
/// Returns wall seconds for the timed pass.
fn run_sharded(sc: &ContentionScenario) -> f64 {
    let pool = Arc::new(Pool::new(sc.workers));
    let consumed = Arc::new(AtomicU64::new(0));
    let mut takers = Vec::new();
    for w in 0..sc.workers {
        let pool = pool.clone();
        let consumed = consumed.clone();
        takers.push(std::thread::spawn(move || {
            let mut bd = Breakdown::default();
            let mut claims = Vec::new();
            let mut finishes = Vec::new();
            while pool.take_batch(w, 8, &mut claims, &mut bd) > 0 {
                let mut n = 0;
                for claim in claims.drain(..) {
                    let mut pending = claim.pending;
                    n += pending.len() as u64;
                    pending.clear();
                    finishes.push(jsweep_core::pool::FinishEntry {
                        id: claim.id,
                        program: Box::new(Nop),
                        halted: true,
                        scratch: pending,
                    });
                }
                pool.finish_batch(&mut finishes);
                consumed.fetch_add(n, Ordering::SeqCst);
            }
        }));
    }
    let delivered = Arc::new(AtomicU64::new(0));
    let mut wall = 0.0;
    for pass in 0..2 {
        let work: Vec<_> = (0..sc.producers).map(|p| sc.producer_batches(p)).collect();
        let t0 = Instant::now();
        let producers: Vec<_> = work
            .into_iter()
            .map(|batches| {
                let pool = pool.clone();
                let delivered = delivered.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || {
                    for batch in batches {
                        let n = batch.len() as u64;
                        // Flow control: keep a bounded number of
                        // streams in flight so the bench measures
                        // sustained producer/worker concurrency, not a
                        // burst-then-drain artifact.
                        while delivered
                            .load(Ordering::SeqCst)
                            .saturating_sub(consumed.load(Ordering::SeqCst))
                            > FLOW_WINDOW
                        {
                            std::thread::yield_now();
                        }
                        pool.deliver_batch(batch);
                        delivered.fetch_add(n, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        while consumed.load(Ordering::SeqCst) < sc.total() * (pass + 1) {
            std::thread::yield_now();
        }
        wall = t0.elapsed().as_secs_f64();
    }
    pool.stop();
    for h in takers {
        h.join().unwrap();
    }
    wall
}

/// Same workload against the pre-PR pool: per-stream delivery, one
/// global lock. Warmup/timed passes mirror [`run_sharded`].
fn run_single_mutex(sc: &ContentionScenario) -> f64 {
    let pool = Arc::new(single_mutex::SingleMutexPool::new());
    let consumed = Arc::new(AtomicU64::new(0));
    let mut takers = Vec::new();
    for _ in 0..sc.workers {
        let pool = pool.clone();
        let consumed = consumed.clone();
        takers.push(std::thread::spawn(move || {
            while let Some(claim) = pool.take() {
                let n = claim.pending.len() as u64;
                pool.finish(claim.id, true);
                consumed.fetch_add(n, Ordering::SeqCst);
            }
        }));
    }
    let delivered = Arc::new(AtomicU64::new(0));
    let mut wall = 0.0;
    for pass in 0..2 {
        let work: Vec<_> = (0..sc.producers).map(|p| sc.producer_batches(p)).collect();
        let t0 = Instant::now();
        let producers: Vec<_> = work
            .into_iter()
            .map(|batches| {
                let pool = pool.clone();
                let delivered = delivered.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || {
                    for batch in batches {
                        let n = batch.len() as u64;
                        while delivered
                            .load(Ordering::SeqCst)
                            .saturating_sub(consumed.load(Ordering::SeqCst))
                            > FLOW_WINDOW
                        {
                            std::thread::yield_now();
                        }
                        for (stream, prio) in batch {
                            pool.deliver(stream, prio);
                        }
                        delivered.fetch_add(n, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        while consumed.load(Ordering::SeqCst) < sc.total() * (pass + 1) {
            std::thread::yield_now();
        }
        wall = t0.elapsed().as_secs_f64();
    }
    pool.stop();
    for h in takers {
        h.join().unwrap();
    }
    wall
}

fn best_of<F: FnMut() -> f64>(runs: usize, mut f: F) -> f64 {
    (0..runs).map(|_| f()).fold(f64::INFINITY, f64::min)
}

struct CodecNumbers {
    pack_frame_ns: f64,
    pack_stream_ns: f64,
    unpack_frame_ns: f64,
    unpack_stream_ns: f64,
}

fn measure_codec(streams_per_frame: usize, payload: usize, iters: usize) -> CodecNumbers {
    let body = Bytes::from(vec![0u8; payload]);
    let streams: Vec<Stream> = (0..streams_per_frame)
        .map(|k| mk_stream(k as u64, 1024, &body).0)
        .collect();
    let per = |total: Duration| total.as_secs_f64() * 1e9 / (iters * streams_per_frame) as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(pack_frame(black_box(&streams)));
    }
    let pack_frame_ns = per(t0.elapsed());

    let t0 = Instant::now();
    for _ in 0..iters {
        for s in &streams {
            black_box(pack_stream(black_box(s)));
        }
    }
    let pack_stream_ns = per(t0.elapsed());

    let frame = pack_frame(&streams);
    let singles: Vec<Bytes> = streams.iter().map(pack_stream).collect();

    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(unpack_frame(black_box(frame.clone())));
    }
    let unpack_frame_ns = per(t0.elapsed());

    let t0 = Instant::now();
    for _ in 0..iters {
        for s in &singles {
            black_box(unpack_stream(black_box(s.clone())));
        }
    }
    let unpack_stream_ns = per(t0.elapsed());

    CodecNumbers {
        pack_frame_ns,
        pack_stream_ns,
        unpack_frame_ns,
        unpack_stream_ns,
    }
}

fn bench_codec_criterion(c: &mut Criterion, streams_per_frame: usize, payload: usize) {
    let body = Bytes::from(vec![0u8; payload]);
    let streams: Vec<Stream> = (0..streams_per_frame)
        .map(|k| mk_stream(k as u64, 1024, &body).0)
        .collect();
    c.bench_function(
        &format!("frame_codec_pack_{streams_per_frame}x{payload}B"),
        |b| b.iter(|| black_box(pack_frame(black_box(&streams)))),
    );
    let frame = pack_frame(&streams);
    c.bench_function(
        &format!("frame_codec_unpack_{streams_per_frame}x{payload}B"),
        |b| b.iter(|| black_box(unpack_frame(black_box(frame.clone())))),
    );
    c.bench_function(&format!("stream_codec_pack_unpack_{payload}B"), |b| {
        let s = &streams[0];
        b.iter(|| black_box(unpack_stream(pack_stream(black_box(s)))))
    });
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");

    // --- Pool contention: ≥4 workers hammering take/finish while the
    // master delivers. Same stream sequence through both pools.
    let sc = if test_mode {
        ContentionScenario {
            workers: 4,
            producers: 2,
            programs: 64,
            batch: 16,
            batches: 8,
        }
    } else {
        ContentionScenario {
            workers: 4,
            producers: 2,
            programs: 4096,
            batch: 64,
            batches: 200,
        }
    };
    let runs = if test_mode { 1 } else { 5 };
    let sharded = best_of(runs, || run_sharded(&sc));
    let single = best_of(runs, || run_single_mutex(&sc));
    let total = sc.total() as f64;
    let speedup = single / sharded;
    println!(
        "pool_contention_sharded_4w           time: {:>10.1} ns/stream  ({:.2} Mstreams/s)",
        sharded * 1e9 / total,
        total / sharded / 1e6
    );
    println!(
        "pool_contention_single_mutex_4w      time: {:>10.1} ns/stream  ({:.2} Mstreams/s)",
        single * 1e9 / total,
        total / single / 1e6
    );
    println!("pool_contention speedup (single-mutex / sharded): {speedup:.2}x");

    // --- Frame codec.
    let (spf, payload) = (64, 32);
    let codec = measure_codec(spf, payload, if test_mode { 2 } else { 4000 });
    let mut c = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(500));
    bench_codec_criterion(&mut c, spf, payload);

    // --- Machine-readable baseline at the workspace root.
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"data_plane\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"pool_contention\": {{\n",
            "    \"workers\": {workers},\n",
            "    \"programs\": {programs},\n",
            "    \"streams\": {streams},\n",
            "    \"batch_size\": {batch},\n",
            "    \"sharded_wall_seconds\": {sharded:.6},\n",
            "    \"sharded_streams_per_sec\": {sharded_tput:.0},\n",
            "    \"single_mutex_wall_seconds\": {single:.6},\n",
            "    \"single_mutex_streams_per_sec\": {single_tput:.0},\n",
            "    \"speedup\": {speedup:.3}\n",
            "  }},\n",
            "  \"frame_codec\": {{\n",
            "    \"streams_per_frame\": {spf},\n",
            "    \"payload_bytes\": {payload},\n",
            "    \"pack_frame_ns_per_stream\": {pf:.1},\n",
            "    \"pack_stream_ns_per_stream\": {ps:.1},\n",
            "    \"unpack_frame_ns_per_stream\": {uf:.1},\n",
            "    \"unpack_stream_ns_per_stream\": {us:.1},\n",
            "    \"pack_speedup\": {pspd:.3},\n",
            "    \"unpack_speedup\": {uspd:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        mode = if test_mode { "test" } else { "full" },
        workers = sc.workers,
        programs = sc.programs,
        streams = sc.total(),
        batch = sc.batch,
        sharded = sharded,
        sharded_tput = total / sharded,
        single = single,
        single_tput = total / single,
        speedup = speedup,
        spf = spf,
        payload = payload,
        pf = codec.pack_frame_ns,
        ps = codec.pack_stream_ns,
        uf = codec.unpack_frame_ns,
        us = codec.unpack_stream_ns,
        pspd = codec.pack_stream_ns / codec.pack_frame_ns,
        uspd = codec.unpack_stream_ns / codec.unpack_frame_ns,
    );
    if test_mode {
        // Smoke numbers are not a baseline; leave the committed one.
        println!("test mode: baseline JSON not rewritten");
    } else {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_data_plane.json");
        std::fs::write(&out, json).expect("write BENCH_data_plane.json");
        println!("baseline written to {}", out.display());
    }
}
